//===- tests/ParallelExplorerTest.cpp - Parallel-engine equivalence ---------===//
//
// The parallel engine must be a drop-in replacement for the sequential
// one: on every program in programs/*.rkr, for the SC, SCM, and TSO
// subsystems, it must report the same verdict and — because an exact
// dedup set is order-independent — the same state, transition, and
// deadlock counts at 2 and 4 worker threads. Programs whose state space
// exceeds the per-test budget are skipped (both engines would truncate at
// engine-specific frontiers); the corpus must still yield a healthy
// number of compared programs.
//
// Also covered: byte-identical violation reports via the sequential
// replay, the Bounded verdict on state and wall-clock budgets, and the
// sharded-set / work-deque primitives.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "memory/SCMemory.h"
#include "parexplore/ParallelExplorer.h"
#include "rocker/RobustnessChecker.h"
#include "support/ShardedSet.h"
#include "tso/TSORobustness.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace rocker;

namespace {

// Budget sized so most corpus programs complete while the test stays
// fast; budget-exceeders are skipped (see file comment).
constexpr uint64_t Budget = 60'000;

std::vector<std::pair<std::string, Program>> loadCorpusDir() {
  std::vector<std::pair<std::string, Program>> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ROCKER_PROGRAMS_DIR)) {
    if (Entry.path().extension() != ".rkr")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buf;
    Buf << In.rdbuf();
    ParseResult R = parseProgram(Buf.str());
    if (!R.ok())
      ADD_FAILURE() << "cannot parse " << Entry.path();
    else
      Out.emplace_back(Entry.path().filename().string(),
                       std::move(*R.Prog));
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  EXPECT_GT(Out.size(), 40u) << "corpus went missing?";
  return Out;
}

RockerOptions fullExploreOpts(unsigned Threads) {
  RockerOptions O;
  O.StopOnViolation = false; // Full exploration: counts are comparable.
  O.RecordTrace = false;
  O.MaxStates = Budget;
  O.Threads = Threads;
  return O;
}

/// Compares sequential vs parallel full-exploration reports; returns
/// false when the comparison was skipped because of truncation.
bool expectEquivalent(const char *What, const std::string &Name,
                      unsigned Threads, const RockerReport &Seq,
                      const RockerReport &Par) {
  if (!Seq.Complete || !Par.Complete)
    return false;
  EXPECT_EQ(Seq.Robust, Par.Robust)
      << What << " verdict diverges on " << Name << " at " << Threads
      << " threads";
  EXPECT_EQ(Seq.Stats.NumStates, Par.Stats.NumStates)
      << What << " state count diverges on " << Name << " at " << Threads
      << " threads";
  EXPECT_EQ(Seq.Stats.NumTransitions, Par.Stats.NumTransitions)
      << What << " transition count diverges on " << Name << " at "
      << Threads << " threads";
  EXPECT_EQ(Seq.Stats.NumDeadlockStates, Par.Stats.NumDeadlockStates)
      << What << " deadlock count diverges on " << Name << " at "
      << Threads << " threads";
  return true;
}

} // namespace

TEST(ParallelExplorer, ScmEquivalentOnFullCorpus) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    RockerReport Seq = checkRobustness(P, fullExploreOpts(1));
    for (unsigned Threads : {2u, 4u}) {
      RockerReport Par = checkRobustness(P, fullExploreOpts(Threads));
      if (expectEquivalent("SCM", Name, Threads, Seq, Par))
        ++Compared;
    }
  }
  EXPECT_GT(Compared, 50u);
}

TEST(ParallelExplorer, ScEquivalentOnFullCorpus) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    RockerReport Seq = exploreSC(P, fullExploreOpts(1));
    for (unsigned Threads : {2u, 4u}) {
      RockerReport Par = exploreSC(P, fullExploreOpts(Threads));
      if (expectEquivalent("SC", Name, Threads, Seq, Par))
        ++Compared;
    }
  }
  EXPECT_GT(Compared, 60u);
}

TEST(ParallelExplorer, TsoEquivalentOnFullCorpus) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    TSOOptions TO;
    TO.MaxStates = Budget;
    TSORobustnessResult Seq = checkTSORobustness(P, TO);
    if (!Seq.Complete)
      continue;
    for (unsigned Threads : {2u, 4u}) {
      TSOOptions PO = TO;
      PO.Threads = Threads;
      TSORobustnessResult Par = checkTSORobustness(P, PO);
      ASSERT_TRUE(Par.Complete) << Name;
      EXPECT_EQ(Seq.Robust, Par.Robust)
          << "TSO verdict diverges on " << Name << " at " << Threads
          << " threads";
      EXPECT_EQ(Seq.Stats.NumStates, Par.Stats.NumStates)
          << "TSO state count diverges on " << Name << " at " << Threads
          << " threads";
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 50u);
}

TEST(ParallelExplorer, ViolationReportsAreByteIdenticalToSequential) {
  // The deterministic replay must make traces and Violation contents
  // byte-identical to the sequential engine, for both robustness
  // violations and assertion failures.
  for (const char *Name : {"SB", "MP", "peterson-ra-dmitriy"}) {
    Program P = findCorpusEntry(Name).parse();
    RockerOptions SO;
    RockerReport Seq = checkRobustness(P, SO);
    for (unsigned Threads : {2u, 4u}) {
      RockerOptions PO;
      PO.Threads = Threads;
      RockerReport Par = checkRobustness(P, PO);
      EXPECT_EQ(Seq.Robust, Par.Robust) << Name;
      ASSERT_EQ(Seq.Violations.size(), Par.Violations.size()) << Name;
      for (size_t I = 0; I != Seq.Violations.size(); ++I) {
        const Violation &A = Seq.Violations[I];
        const Violation &B = Par.Violations[I];
        EXPECT_EQ(A.K, B.K);
        EXPECT_EQ(A.StateId, B.StateId);
        EXPECT_EQ(A.Thread, B.Thread);
        EXPECT_EQ(A.Pc, B.Pc);
        EXPECT_EQ(A.Loc, B.Loc);
        EXPECT_EQ(A.Witness, B.Witness);
        EXPECT_EQ(A.Detail, B.Detail);
      }
      EXPECT_EQ(Seq.FirstViolationText, Par.FirstViolationText) << Name;
      ASSERT_EQ(Seq.FirstViolationTrace.size(),
                Par.FirstViolationTrace.size())
          << Name;
      for (size_t I = 0; I != Seq.FirstViolationTrace.size(); ++I) {
        EXPECT_EQ(Seq.FirstViolationTrace[I].Thread,
                  Par.FirstViolationTrace[I].Thread);
        EXPECT_EQ(Seq.FirstViolationTrace[I].Text,
                  Par.FirstViolationTrace[I].Text);
      }
    }
  }
}

TEST(ParallelExplorer, BoundedVerdictOnStateBudget) {
  Program P = findCorpusEntry("lamport2-ra").parse();
  SCMemory Mem(P);
  ParExploreOptions PO;
  PO.Threads = 2;
  PO.MaxStates = 100;
  ParallelExplorer<SCMemory> Ex(P, Mem, PO);
  ParExploreResult R = Ex.run();
  EXPECT_EQ(R.Verdict, ParVerdict::Bounded);
  EXPECT_TRUE(R.Stats.Truncated);
  EXPECT_FALSE(R.TimedOut);
  // Overshoot is bounded: each in-flight worker finishes one expansion.
  EXPECT_GE(R.Stats.NumStates, 100u);
}

TEST(ParallelExplorer, BoundedVerdictOnWallClock) {
  Program P = findCorpusEntry("lamport2-ra").parse();
  SCMemory Mem(P);
  ParExploreOptions PO;
  PO.Threads = 2;
  PO.MaxSeconds = 1e-9; // Expires immediately after the first batch.
  ParallelExplorer<SCMemory> Ex(P, Mem, PO);
  ParExploreResult R = Ex.run();
  if (R.Verdict == ParVerdict::Bounded) {
    EXPECT_TRUE(R.TimedOut);
    EXPECT_TRUE(R.Stats.Truncated);
  } else {
    // A tiny state space can still finish before the deadline check.
    EXPECT_EQ(R.Verdict, ParVerdict::NoViolation);
  }
}

TEST(ParallelExplorer, StatsArePopulated) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerOptions O = fullExploreOpts(4);
  RockerReport R = checkRobustness(P, O);
  ASSERT_TRUE(R.Complete);
  EXPECT_GT(R.Stats.DedupHits, 0u);
  EXPECT_GT(R.Stats.PeakFrontier, 0u);
  EXPECT_EQ(R.Stats.PerThreadStatesPerSec.size(), 4u);
  // Sequential engine fills the same fields (satellite: engine-reported
  // stats are the single source of truth).
  RockerReport S = checkRobustness(P, fullExploreOpts(1));
  EXPECT_GT(S.Stats.DedupHits, 0u);
  EXPECT_GT(S.Stats.PeakFrontier, 0u);
  ASSERT_EQ(S.Stats.PerThreadStatesPerSec.size(), 1u);
  EXPECT_EQ(S.Stats.DedupHits, R.Stats.DedupHits);
}

// Both engines populate ExploreStats::Workers with the same layout, so
// report consumers never special-case engine type: the sequential engine
// contributes one entry, the parallel engine one per worker, and the
// per-worker totals sum to the whole-run counters — equal across engines
// on full explorations (exact dedup is order-independent).
TEST(ParallelExplorer, WorkerCountersAgreeAcrossEngines) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Seq = checkRobustness(P, fullExploreOpts(1));
  ASSERT_TRUE(Seq.Complete);
  ASSERT_EQ(Seq.Stats.Workers.size(), 1u);
  EXPECT_EQ(Seq.Stats.Workers[0].Expanded, Seq.Stats.NumStates);
  EXPECT_EQ(Seq.Stats.Workers[0].Transitions, Seq.Stats.NumTransitions);
  EXPECT_EQ(Seq.Stats.Workers[0].DedupHits, Seq.Stats.DedupHits);
  EXPECT_EQ(Seq.Stats.Workers[0].Steals, 0u);
  EXPECT_EQ(Seq.Stats.PerThreadStatesPerSec[0],
            Seq.Stats.Workers[0].statesPerSec());

  for (unsigned Threads : {2u, 4u}) {
    RockerReport Par = checkRobustness(P, fullExploreOpts(Threads));
    ASSERT_TRUE(Par.Complete);
    ASSERT_EQ(Par.Stats.Workers.size(), Threads);
    ExploreStats::WorkerCounters Sum;
    for (const ExploreStats::WorkerCounters &W : Par.Stats.Workers) {
      Sum.Expanded += W.Expanded;
      Sum.Transitions += W.Transitions;
      Sum.DedupHits += W.DedupHits;
      Sum.Deadlocks += W.Deadlocks;
    }
    EXPECT_EQ(Sum.Expanded, Seq.Stats.NumStates)
        << "at " << Threads << " threads";
    EXPECT_EQ(Sum.Transitions, Seq.Stats.NumTransitions)
        << "at " << Threads << " threads";
    EXPECT_EQ(Sum.DedupHits, Seq.Stats.DedupHits)
        << "at " << Threads << " threads";
    EXPECT_EQ(Sum.Deadlocks, Seq.Stats.NumDeadlockStates)
        << "at " << Threads << " threads";
  }
}

TEST(ShardedStateSet, InsertContainsDrain) {
  ShardedStateSet Set(4);
  EXPECT_TRUE(Set.insert("alpha"));
  EXPECT_FALSE(Set.insert("alpha"));
  EXPECT_TRUE(Set.insert("beta"));
  EXPECT_TRUE(Set.contains("alpha"));
  EXPECT_FALSE(Set.contains("gamma"));
  EXPECT_EQ(Set.size(), 2u);
  std::unordered_set<std::string, StateKeyHash> Out;
  Set.drainInto(Out);
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_TRUE(Out.count("alpha"));
  EXPECT_TRUE(Out.count("beta"));
}

TEST(WorkDeque, OwnerLifoThiefFifo) {
  WorkDeque<int> D;
  D.push(1);
  D.push(2);
  D.push(3);
  EXPECT_EQ(D.size(), 3u);
  EXPECT_EQ(*D.steal(), 1); // Oldest from the front.
  EXPECT_EQ(*D.pop(), 3);   // Newest from the back.
  EXPECT_EQ(*D.pop(), 2);
  EXPECT_FALSE(D.pop().has_value());
  EXPECT_FALSE(D.steal().has_value());
}
