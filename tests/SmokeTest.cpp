#include "litmus/Corpus.h"
#include "rocker/RobustnessChecker.h"
#include "rocker/Oracles.h"
#include <gtest/gtest.h>

using namespace rocker;

TEST(Smoke, ParseSB) {
  Program P = findCorpusEntry("SB").parse();
  EXPECT_EQ(P.numThreads(), 2u);
  EXPECT_EQ(P.numLocs(), 2u);
}

TEST(Smoke, SBNotRobust) {
  Program P = findCorpusEntry("SB").parse();
  RockerReport R = checkRobustness(P);
  EXPECT_FALSE(R.Robust);
}

TEST(Smoke, MPRobust) {
  Program P = findCorpusEntry("MP").parse();
  RockerReport R = checkRobustness(P);
  EXPECT_TRUE(R.Robust) << R.FirstViolationText;
}
