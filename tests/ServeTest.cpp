//===- tests/ServeTest.cpp - Verdict cache + batch runtime ------------------===//
//
// Contract of the serving tier (src/serve):
//
//  * The cache key covers exactly the verdict-relevant surface: program
//    text (modulo parse/print normal form), mode, and every RockerOption
//    that can change a verdict or state count — and provably nothing
//    else. Thread counts, trace recording, wall-clock budgets, and
//    checkpoint plumbing must not change the key, or identical
//    submissions would miss; anything verdict-relevant must change it,
//    or different submissions would collide.
//  * A cache hit is indistinguishable from a fresh run: same verdict
//    class, robust/complete bits, and state count, across the whole
//    litmus corpus, sequential and with a worker pool.
//  * Corrupt or truncated store entries are rejected and recomputed,
//    never served.
//  * A preempted job leaves a spill that a later submission of the same
//    key resumes, with a verdict identical to an undisturbed run.
//  * Checked numeric parsing (support/ParseNum.h) accepts exactly the
//    documented forms — trailing junk is a parse failure, not a silent
//    truncation (the strtoull-era bug this hardening round removes).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "resilience/Resilience.h"
#include "serve/BatchRunner.h"
#include "support/ParseNum.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace rocker;

namespace {

namespace fs = std::filesystem;

/// A unique per-test cache directory, removed on destruction.
struct ScopedCacheDir {
  std::string Path;
  explicit ScopedCacheDir(const std::string &Stem)
      : Path((fs::temp_directory_path() /
              (Stem + "." + std::to_string(::getpid())))
                 .string()) {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  ~ScopedCacheDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
};

RockerOptions fastOpts() {
  RockerOptions O;
  O.MaxStates = 2'000'000;
  return O;
}

std::vector<serve::BatchJob> litmusBatch(const RockerOptions &Defaults) {
  std::vector<serve::BatchJob> Jobs;
  for (const CorpusEntry &E : litmusTests()) {
    serve::BatchJob J;
    J.Name = E.Name;
    J.Prog = E.parse();
    J.Opts = Defaults;
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cache-key canonicalization
//===----------------------------------------------------------------------===//

TEST(CacheKey, StableFormat) {
  Program P = findCorpusEntry("SB").parse();
  std::string Key = serve::cacheKey(P, "robustness", RockerOptions());
  EXPECT_EQ(Key.size(), 32u);
  EXPECT_EQ(Key.find_first_not_of("0123456789abcdef"), std::string::npos)
      << Key;
  // Deterministic across calls (and, by construction, across runs: the
  // key hashes a canonical string, never pointers or timestamps).
  EXPECT_EQ(Key, serve::cacheKey(P, "robustness", RockerOptions()));
}

TEST(CacheKey, InsensitiveToWallClockAndObservabilityKnobs) {
  Program P = findCorpusEntry("peterson-ra").parse();
  std::string Base = serve::cacheKey(P, "robustness", RockerOptions());

  // Every knob that affects only how fast / how observable the run is,
  // never what it concludes. Each must leave the key untouched.
  RockerOptions O;
  O.Threads = 8;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "Threads";

  O = RockerOptions();
  O.RecordTrace = false;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "RecordTrace";

  O = RockerOptions();
  O.MaxSeconds = 30;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "MaxSeconds";

  O = RockerOptions();
  O.Resilience.DeadlineSeconds = 5;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "Deadline";

  O = RockerOptions();
  O.Resilience.WatchdogSeconds = 5;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "Watchdog";

  O = RockerOptions();
  O.Resilience.CheckpointPath = "/tmp/somewhere.rkcp";
  O.Resilience.CheckpointIntervalSeconds = 1;
  O.Resilience.CheckpointEveryExpansions = 10;
  O.Resilience.ResumePath = "/tmp/somewhere.rkcp";
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), Base) << "Checkpointing";

  // Sampling workers share one budget first-violation-wins; with a
  // fixed seed the verdict is worker-count-blind, like Threads.
  O = RockerOptions();
  O.UseSampling = true;
  std::string SampleBase = serve::cacheKey(P, "robustness", O);
  O.Sampling.Workers = 4;
  EXPECT_EQ(serve::cacheKey(P, "robustness", O), SampleBase)
      << "Sampling.Workers";
}

TEST(CacheKey, SensitiveToVerdictRelevantOptions) {
  Program P = findCorpusEntry("peterson-ra").parse();
  std::string Base = serve::cacheKey(P, "robustness", RockerOptions());

  EXPECT_NE(serve::cacheKey(P, "sc", RockerOptions()), Base) << "mode";

  Program Q = findCorpusEntry("SB").parse();
  EXPECT_NE(serve::cacheKey(Q, "robustness", RockerOptions()), Base)
      << "program";

  RockerOptions O;
  O.UseCriticalAbstraction = false;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "crit";

  O = RockerOptions();
  O.CheckRaces = false;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "races";

  O = RockerOptions();
  O.CheckAssertions = false;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "asserts";

  O = RockerOptions();
  O.StopOnViolation = false;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "stoponviol";

  O = RockerOptions();
  O.MaxStates = 12345;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "maxstates";

  O = RockerOptions();
  O.BitstateLog2 = 20;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "bitstate";

  O = RockerOptions();
  O.UsePor = !O.UsePor;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "por";

  O = RockerOptions();
  O.Order = O.Order == SearchOrder::BFS ? SearchOrder::DFS
                                        : SearchOrder::BFS;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "order";

  O = RockerOptions();
  O.CollapseLocalSteps = !O.CollapseLocalSteps;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "collapse";

  O = RockerOptions();
  O.CompressVisited = !O.CompressVisited;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "compress";

  O = RockerOptions();
  O.UseSampling = true;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "sampling";

  O = RockerOptions();
  O.Resilience.MemBudgetBytes = 64ull << 20;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "membudget";

  O = RockerOptions();
  O.Resilience.SampleOnExhaustion = true;
  EXPECT_NE(serve::cacheKey(P, "robustness", O), Base) << "sampleonexhaust";
}

TEST(CacheKey, SamplingConfigCountsOnlyWhenSamplingCanRun) {
  Program P = findCorpusEntry("SB").parse();

  // The sampling block is dead configuration for a purely exhaustive
  // run, so it must not perturb the key...
  RockerOptions A, B;
  B.Sampling.Seed = 999;
  B.Sampling.Samples = 7;
  B.Sampling.MaxDepth = 17;
  EXPECT_EQ(serve::cacheKey(P, "robustness", A),
            serve::cacheKey(P, "robustness", B));

  // ...but with the sampling engine (or the exhaustion fallback) armed,
  // budget and seed decide what a BoundedRobust verdict means.
  A.UseSampling = B.UseSampling = true;
  EXPECT_NE(serve::cacheKey(P, "robustness", A),
            serve::cacheKey(P, "robustness", B));

  A = RockerOptions();
  B = RockerOptions();
  A.Resilience.SampleOnExhaustion = B.Resilience.SampleOnExhaustion = true;
  B.Sampling.Seed = 999;
  EXPECT_NE(serve::cacheKey(P, "robustness", A),
            serve::cacheKey(P, "robustness", B));
}

TEST(CacheKey, ProgramTextIsNormalized) {
  // Two spellings of the same program — different whitespace, comments,
  // and instruction spacing — must map to the same key: the key hashes
  // the parse/print normal form, not the submitted bytes.
  const char *Spelling1 = R"(
program norm
vals 2
locs x y

thread t0
  x := 1
  a := y

thread t1
  y := 1
  b := x
)";
  const char *Spelling2 = R"(
# store buffering, reformatted
program norm
vals 2
locs   x   y

thread t0
    x := 1

    a := y
thread t1
  y := 1
  b := x
)";
  ParseResult R1 = parseProgram(Spelling1);
  ParseResult R2 = parseProgram(Spelling2);
  ASSERT_TRUE(R1.ok()) << "fixture must parse";
  ASSERT_TRUE(R2.ok()) << "fixture must parse";
  EXPECT_EQ(serve::cacheKey(*R1.Prog, "robustness", RockerOptions()),
            serve::cacheKey(*R2.Prog, "robustness", RockerOptions()));
}

//===----------------------------------------------------------------------===//
// Store round trips and corruption
//===----------------------------------------------------------------------===//

TEST(VerdictCache, StoreLookupRoundTrip) {
  ScopedCacheDir Dir("rocker-serve-roundtrip");

  serve::BatchJob J;
  J.Name = "SB";
  J.Prog = findCorpusEntry("SB").parse();
  J.Opts = fastOpts();

  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;
  serve::BatchResult Cold = serve::runBatch({J}, BO);
  ASSERT_EQ(Cold.Jobs.size(), 1u);
  ASSERT_TRUE(Cold.Jobs[0].Error.empty()) << Cold.Jobs[0].Error;
  EXPECT_EQ(Cold.Jobs[0].Source, serve::JobSource::Fresh);
  EXPECT_TRUE(Cold.Jobs[0].Stored);

  // A second cache object over the same directory sees the entry.
  serve::VerdictCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.ok()) << Cache.error();
  EXPECT_EQ(Cache.entryCount(), 1u);
  auto Hit = Cache.lookup(Cold.Jobs[0].Key);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Verdict, VerdictClass::NotRobust);
  EXPECT_EQ(Hit->Verdict, Cold.Jobs[0].Verdict);
  EXPECT_EQ(Hit->States, Cold.Jobs[0].States);
  EXPECT_EQ(Hit->Complete, Cold.Jobs[0].Complete);
}

TEST(VerdictCache, CorruptEntryRejectedAndRecomputed) {
  ScopedCacheDir Dir("rocker-serve-corrupt");
  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;

  std::vector<serve::BatchJob> Jobs = litmusBatch(fastOpts());
  serve::BatchResult Cold = serve::runBatch(Jobs, BO);
  ASSERT_EQ(Cold.Errors, 0u);

  serve::VerdictCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.ok()) << Cache.error();

  // Truncate one entry and garbage another; both must read as misses.
  const std::string TruncKey = Cold.Jobs[0].Key;
  const std::string GarbageKey = Cold.Jobs[1].Key;
  {
    std::string Full;
    {
      std::ifstream In(Cache.entryPath(TruncKey));
      ASSERT_TRUE(In.good());
      Full.assign(std::istreambuf_iterator<char>(In), {});
    }
    std::ofstream Out(Cache.entryPath(TruncKey), std::ios::trunc);
    Out << Full.substr(0, Full.size() / 2);
  }
  {
    std::ofstream Out(Cache.entryPath(GarbageKey), std::ios::trunc);
    Out << "{\"schema\":\"rocker-cache-entry/1\",\"key\":\"not-the-key\"}";
  }
  std::string Why;
  EXPECT_FALSE(Cache.lookup(TruncKey, &Why).has_value());
  EXPECT_FALSE(Cache.lookup(GarbageKey, &Why).has_value());

  // A warm batch recomputes exactly the damaged entries, serves the
  // rest from the store, and republishes what it recomputed.
  serve::BatchResult Warm = serve::runBatch(Jobs, BO);
  ASSERT_EQ(Warm.Jobs.size(), Cold.Jobs.size());
  for (size_t I = 0; I != Warm.Jobs.size(); ++I) {
    const serve::BatchJobResult &W = Warm.Jobs[I];
    ASSERT_TRUE(W.Error.empty()) << W.Name << ": " << W.Error;
    EXPECT_EQ(W.Verdict, Cold.Jobs[I].Verdict) << W.Name;
    EXPECT_EQ(W.States, Cold.Jobs[I].States) << W.Name;
    if (W.Key == TruncKey || W.Key == GarbageKey) {
      EXPECT_EQ(W.Source, serve::JobSource::Fresh) << W.Name;
      EXPECT_TRUE(W.Stored) << W.Name;
    } else {
      EXPECT_EQ(W.Source, serve::JobSource::CacheHit) << W.Name;
    }
  }

  // The recomputed entries are valid again.
  EXPECT_TRUE(Cache.lookup(TruncKey).has_value());
  EXPECT_TRUE(Cache.lookup(GarbageKey).has_value());
}

//===----------------------------------------------------------------------===//
// Batch runtime
//===----------------------------------------------------------------------===//

TEST(ServeBatch, WarmPassServesEveryVerdictUnchanged) {
  ScopedCacheDir Dir("rocker-serve-warm");
  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;

  std::vector<serve::BatchJob> Jobs = litmusBatch(fastOpts());
  serve::BatchResult Cold = serve::runBatch(Jobs, BO);
  serve::BatchResult Warm = serve::runBatch(Jobs, BO);
  ASSERT_EQ(Cold.Errors, 0u);
  ASSERT_EQ(Warm.Errors, 0u);
  ASSERT_EQ(Warm.Jobs.size(), Jobs.size());
  EXPECT_EQ(Warm.Hits, Warm.Jobs.size());
  EXPECT_EQ(Warm.Misses, 0u);

  for (size_t I = 0; I != Jobs.size(); ++I) {
    const serve::BatchJobResult &C = Cold.Jobs[I];
    const serve::BatchJobResult &W = Warm.Jobs[I];
    EXPECT_EQ(W.Source, serve::JobSource::CacheHit) << W.Name;

    // The hit must be indistinguishable from the fresh verdict — and
    // both must match a plain engine run outside the batch layer.
    EXPECT_EQ(W.Verdict, C.Verdict) << W.Name;
    EXPECT_EQ(W.Robust, C.Robust) << W.Name;
    EXPECT_EQ(W.Complete, C.Complete) << W.Name;
    EXPECT_EQ(W.States, C.States) << W.Name;
    RockerReport Fresh = checkRobustness(Jobs[I].Prog, Jobs[I].Opts);
    EXPECT_EQ(W.Verdict, Fresh.verdictClass()) << W.Name;
    EXPECT_EQ(W.States, Fresh.Stats.NumStates) << W.Name;
  }
}

TEST(ServeBatch, WorkerPoolMatchesSequential) {
  ScopedCacheDir DirSeq("rocker-serve-seq");
  ScopedCacheDir DirPar("rocker-serve-par");
  std::vector<serve::BatchJob> Jobs = litmusBatch(fastOpts());

  serve::BatchOptions Seq;
  Seq.CacheDir = DirSeq.Path;
  serve::BatchOptions Par;
  Par.CacheDir = DirPar.Path;
  Par.Workers = 4;

  serve::BatchResult A = serve::runBatch(Jobs, Seq);
  serve::BatchResult B = serve::runBatch(Jobs, Par);
  ASSERT_EQ(A.Jobs.size(), B.Jobs.size());
  for (size_t I = 0; I != A.Jobs.size(); ++I) {
    EXPECT_EQ(A.Jobs[I].Name, B.Jobs[I].Name);
    EXPECT_EQ(A.Jobs[I].Key, B.Jobs[I].Key) << A.Jobs[I].Name;
    EXPECT_EQ(A.Jobs[I].Verdict, B.Jobs[I].Verdict) << A.Jobs[I].Name;
    EXPECT_EQ(A.Jobs[I].States, B.Jobs[I].States) << A.Jobs[I].Name;
  }
}

TEST(ServeBatch, IntraBatchDuplicateComputedOnce) {
  ScopedCacheDir Dir("rocker-serve-dup");
  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;

  serve::BatchJob J;
  J.Name = "MP-first";
  J.Prog = findCorpusEntry("MP").parse();
  J.Opts = fastOpts();
  serve::BatchJob Dup = J;
  Dup.Name = "MP-again";

  serve::BatchResult R = serve::runBatch({J, Dup}, BO);
  ASSERT_EQ(R.Jobs.size(), 2u);
  EXPECT_EQ(R.Jobs[0].Source, serve::JobSource::Fresh);
  EXPECT_EQ(R.Jobs[1].Source, serve::JobSource::CacheHit);
  EXPECT_EQ(R.Jobs[1].Name, "MP-again");
  EXPECT_EQ(R.Jobs[0].Verdict, R.Jobs[1].Verdict);
  EXPECT_EQ(R.Jobs[0].States, R.Jobs[1].States);
  EXPECT_EQ(R.Hits, 1u);
  EXPECT_EQ(R.Misses, 1u);
  EXPECT_EQ(R.Stores, 1u);
}

TEST(ServeBatch, RecheckBypassesLookupButStillStores) {
  ScopedCacheDir Dir("rocker-serve-recheck");
  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;

  serve::BatchJob J;
  J.Name = "SB";
  J.Prog = findCorpusEntry("SB").parse();
  J.Opts = fastOpts();

  serve::runBatch({J}, BO);
  BO.UseCache = false;
  serve::BatchResult R = serve::runBatch({J}, BO);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Source, serve::JobSource::Fresh);
  EXPECT_TRUE(R.Jobs[0].Stored); // Republished over the old entry.
}

TEST(ServeBatch, PreemptedJobResumesToIdenticalVerdict) {
  ScopedCacheDir Dir("rocker-serve-resume");
  serve::BatchOptions BO;
  BO.CacheDir = Dir.Path;
  BO.CheckpointEveryExpansions = 20; // Deterministic preemption points.

  serve::BatchJob J;
  J.Name = "peterson-ra";
  J.Prog = findCorpusEntry("peterson-ra").parse();
  J.Opts = fastOpts();
  RockerReport Ref = checkRobustness(J.Prog, J.Opts);
  ASSERT_TRUE(Ref.Complete);

  // Preempt the cold run mid-exploration: the job reports incomplete,
  // publishes nothing, and leaves a resumable spill behind.
  resilience::requestStop();
  serve::BatchResult Stopped = serve::runBatch({J}, BO);
  resilience::clearStopRequest();
  ASSERT_EQ(Stopped.Jobs.size(), 1u);
  ASSERT_TRUE(Stopped.Jobs[0].Error.empty()) << Stopped.Jobs[0].Error;
  EXPECT_FALSE(Stopped.Jobs[0].Complete);
  EXPECT_FALSE(Stopped.Jobs[0].Stored);

  serve::VerdictCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.ok()) << Cache.error();
  EXPECT_FALSE(Cache.lookup(Stopped.Jobs[0].Key).has_value())
      << "interrupted runs must never be published";
  ASSERT_TRUE(fs::exists(Cache.jobCheckpointPath(Stopped.Jobs[0].Key)));

  // Resubmission resumes from the spill and lands the exact verdict an
  // undisturbed run produces, then publishes it and clears the spill.
  serve::BatchResult Resumed = serve::runBatch({J}, BO);
  ASSERT_EQ(Resumed.Jobs.size(), 1u);
  ASSERT_TRUE(Resumed.Jobs[0].Error.empty()) << Resumed.Jobs[0].Error;
  EXPECT_EQ(Resumed.Jobs[0].Source, serve::JobSource::Resumed);
  EXPECT_EQ(Resumed.Jobs[0].Verdict, Ref.verdictClass());
  EXPECT_EQ(Resumed.Jobs[0].States, Ref.Stats.NumStates);
  EXPECT_TRUE(Resumed.Jobs[0].Stored);
  EXPECT_FALSE(fs::exists(Cache.jobCheckpointPath(Resumed.Jobs[0].Key)));

  // Third submission: a plain hit.
  serve::BatchResult Hit = serve::runBatch({J}, BO);
  ASSERT_EQ(Hit.Jobs.size(), 1u);
  EXPECT_EQ(Hit.Jobs[0].Source, serve::JobSource::CacheHit);
  EXPECT_EQ(Hit.Jobs[0].Verdict, Ref.verdictClass());
}

//===----------------------------------------------------------------------===//
// Manifest parsing and exit codes
//===----------------------------------------------------------------------===//

TEST(ServeBatch, ManifestParsesDefaultsAndOverrides) {
  const char *Text = R"({
    "schema": "rocker-batch-manifest/1",
    "defaults": { "threads": 2, "max_states": 5000 },
    "jobs": [
      { "program": "SB" },
      { "program": "MP", "mode": "sc", "name": "mp-under-sc" },
      { "program": "peterson-ra", "max_states": 77 }
    ]
  })";
  std::string Err;
  auto Jobs = serve::parseBatchManifest(Text, &Err);
  ASSERT_TRUE(Jobs.has_value()) << Err;
  ASSERT_EQ(Jobs->size(), 3u);
  EXPECT_EQ((*Jobs)[0].Name, "SB");
  EXPECT_EQ((*Jobs)[0].Mode, "robustness");
  EXPECT_EQ((*Jobs)[0].Opts.Threads, 2u);
  EXPECT_EQ((*Jobs)[0].Opts.MaxStates, 5000u);
  EXPECT_EQ((*Jobs)[1].Name, "mp-under-sc");
  EXPECT_EQ((*Jobs)[1].Mode, "sc");
  EXPECT_EQ((*Jobs)[2].Opts.MaxStates, 77u);
  EXPECT_EQ((*Jobs)[2].Opts.Threads, 2u); // Defaults still apply.
}

TEST(ServeBatch, ManifestRejectsBadInput) {
  std::string Err;
  EXPECT_FALSE(serve::parseBatchManifest("not json", &Err).has_value());

  EXPECT_FALSE(
      serve::parseBatchManifest(R"({"schema":"nope","jobs":[]})", &Err)
          .has_value());
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;

  // Unknown option keys are errors, not silently ignored — a typo like
  // "max_state" must not quietly run with default budgets.
  EXPECT_FALSE(serve::parseBatchManifest(
                   R"({"schema":"rocker-batch-manifest/1",
                       "jobs":[{"program":"SB","max_state":7}]})",
                   &Err)
                   .has_value());
  EXPECT_NE(Err.find("max_state"), std::string::npos) << Err;

  // A job needs exactly one of program/file.
  EXPECT_FALSE(serve::parseBatchManifest(
                   R"({"schema":"rocker-batch-manifest/1","jobs":[{}]})",
                   &Err)
                   .has_value());
  EXPECT_FALSE(
      serve::parseBatchManifest(
          R"({"schema":"rocker-batch-manifest/1",
              "jobs":[{"program":"SB","file":"x.rkr"}]})",
          &Err)
          .has_value());

  // Unresolvable corpus names are errors too.
  EXPECT_FALSE(serve::parseBatchManifest(
                   R"({"schema":"rocker-batch-manifest/1",
                       "jobs":[{"program":"no-such-program"}]})",
                   &Err)
                   .has_value());
}

TEST(ServeBatch, ExitCodeContract) {
  serve::BatchResult R;
  R.Jobs.resize(2);
  R.Jobs[0].Verdict = VerdictClass::Robust;
  R.Jobs[1].Verdict = VerdictClass::Robust;
  EXPECT_EQ(serve::batchExitCode(R), 0);
  EXPECT_EQ(R.worst(), VerdictClass::Robust);

  R.Jobs[1].Verdict = VerdictClass::BoundedRobust;
  EXPECT_EQ(serve::batchExitCode(R), 2);
  EXPECT_EQ(R.worst(), VerdictClass::BoundedRobust);

  R.Jobs[0].Verdict = VerdictClass::NotRobust;
  EXPECT_EQ(serve::batchExitCode(R), 1);
  EXPECT_EQ(R.worst(), VerdictClass::NotRobust);

  R.Errors = 1;
  EXPECT_EQ(serve::batchExitCode(R), 4);
}

//===----------------------------------------------------------------------===//
// Checked numeric parsing
//===----------------------------------------------------------------------===//

TEST(ParseNum, U64AcceptsExactlyDigits) {
  EXPECT_EQ(num::parseU64("0"), 0u);
  EXPECT_EQ(num::parseU64("42"), 42u);
  EXPECT_EQ(num::parseU64("18446744073709551615"),
            18446744073709551615ull);

  EXPECT_FALSE(num::parseU64(""));
  EXPECT_FALSE(num::parseU64("2x"));       // The --threads=2x bug.
  EXPECT_FALSE(num::parseU64("4 "));
  EXPECT_FALSE(num::parseU64(" 4"));
  EXPECT_FALSE(num::parseU64("-1"));
  EXPECT_FALSE(num::parseU64("+1"));
  EXPECT_FALSE(num::parseU64("0x10"));
  EXPECT_FALSE(num::parseU64("18446744073709551616")); // Overflow.
  EXPECT_FALSE(num::parseU64(nullptr));
}

TEST(ParseNum, U32RangeChecks) {
  EXPECT_EQ(num::parseU32("4294967295"), 4294967295u);
  EXPECT_FALSE(num::parseU32("4294967296"));
  EXPECT_FALSE(num::parseU32("abc"));
}

TEST(ParseNum, F64AcceptsPlainDecimals) {
  EXPECT_EQ(num::parseF64("0.5"), 0.5);
  EXPECT_EQ(num::parseF64("2"), 2.0);
  EXPECT_FALSE(num::parseF64("abc"));
  EXPECT_FALSE(num::parseF64("1.5s"));
  EXPECT_FALSE(num::parseF64("-1"));
  EXPECT_FALSE(num::parseF64(""));
  EXPECT_FALSE(num::parseF64(nullptr));
}

TEST(ParseNum, ByteSizeSuffixes) {
  EXPECT_EQ(num::parseByteSize("1024"), 1024u);
  EXPECT_EQ(num::parseByteSize("4K"), 4096u);
  EXPECT_EQ(num::parseByteSize("512m"), 512ull << 20);
  EXPECT_EQ(num::parseByteSize("2G"), 2ull << 30);
  EXPECT_FALSE(num::parseByteSize("1MB")); // One suffix letter only.
  EXPECT_FALSE(num::parseByteSize("12Q"));
  EXPECT_FALSE(num::parseByteSize("M"));
  EXPECT_FALSE(num::parseByteSize(""));
  EXPECT_FALSE(num::parseByteSize("18014398509481984G")); // Overflow.
}
