//===- tests/TelemetryTest.cpp - Telemetry subsystem correctness ------------===//
//
// Covers src/obs: span self-time attribution, counter aggregation across
// concurrent workers, the phase-sum property on a real verification run
// (per-phase times of a single-threaded run sum to the engine-reported
// Seconds), the JSON report schema round-trip, clean progress-reporter
// shutdown on runs faster than its interval, and verdict neutrality of
// the progress machinery. Timing assertions are skipped when the
// subsystem is compiled out (-DROCKER_NO_TELEMETRY); the compile-out
// variant instead asserts that every entry point is an empty shell.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "obs/Json.h"
#include "obs/RunReport.h"
#include "obs/Telemetry.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace rocker;

namespace {

/// Spins (does not sleep — sleeping time is still attributed, but spinning
/// keeps the cycle counter honest on all tick sources) for \p Ms.
void busyWait(double Ms) {
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration<double, std::milli>(Ms);
  while (std::chrono::steady_clock::now() < End) {
  }
}

} // namespace

// The phase and counter taxonomies are maintained by hand in three
// places (enum, Num constant, name switch); the static_asserts in
// Telemetry.h pin the counts, and this pins the names: total (every
// value has one), non-empty, and unique — a copy-pasted duplicate name
// would silently merge two report keys.
TEST(Telemetry, PhaseAndCounterNamesTotalUniqueNonEmpty) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I != obs::NumPhases; ++I) {
    const char *N = obs::phaseName(static_cast<obs::Phase>(I));
    ASSERT_NE(N, nullptr);
    EXPECT_STRNE(N, "") << "phase " << I << " has an empty name";
    EXPECT_TRUE(Seen.insert(N).second)
        << "phase name '" << N << "' is not unique";
  }
  EXPECT_EQ(Seen.size(), obs::NumPhases);

  Seen.clear();
  for (unsigned I = 0; I != obs::NumCounters; ++I) {
    const char *N = obs::counterName(static_cast<obs::Ctr>(I));
    ASSERT_NE(N, nullptr);
    EXPECT_STRNE(N, "") << "counter " << I << " has an empty name";
    EXPECT_TRUE(Seen.insert(N).second)
        << "counter name '" << N << "' is not unique";
  }
  EXPECT_EQ(Seen.size(), obs::NumCounters);
}

#ifndef ROCKER_NO_TELEMETRY

TEST(Telemetry, SpanSelfTimeAttribution) {
  obs::Snapshot Before = obs::snapshot();
  {
    obs::Span Outer(obs::Phase::Parse);
    busyWait(20);
    {
      // A nested span pauses the enclosing phase: its time must land on
      // Explore, not Parse.
      obs::Span Inner(obs::Phase::Explore);
      busyWait(20);
    }
    busyWait(10);
  }
  obs::Snapshot D = obs::diff(obs::snapshot(), Before);
  EXPECT_NEAR(D.phase(obs::Phase::Parse), 0.030, 0.015);
  EXPECT_NEAR(D.phase(obs::Phase::Explore), 0.020, 0.015);
}

TEST(Telemetry, CountersAggregateAcrossThreads) {
  // ProgressTicks is bumped only by the reporter thread, which is not
  // running here, so the delta is exactly what these workers add. Worker
  // threads exit before the final snapshot, covering the retired-thread
  // fold path as well as the live one.
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t PerThread = 10'000;
  obs::Snapshot Before = obs::snapshot();
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != NumThreads; ++I)
    Ts.emplace_back([] {
      for (uint64_t N = 0; N != PerThread; ++N)
        obs::add(obs::Ctr::ProgressTicks);
    });
  for (std::thread &T : Ts)
    T.join();
  obs::Snapshot D = obs::diff(obs::snapshot(), Before);
  EXPECT_EQ(D.counter(obs::Ctr::ProgressTicks), NumThreads * PerThread);
}

// The acceptance property: for a single-threaded verification run, the
// per-phase times bracket-summed around it match the engine-reported
// Seconds — self-time spans charge each instant to exactly one phase, so
// this holds by construction, not by luck.
TEST(Telemetry, PhaseTimesSumToExploreSeconds) {
  Program P = findCorpusEntry("lamport2-ra").parse();
  RockerOptions O;
  O.StopOnViolation = false;
  O.RecordTrace = false;
  obs::Snapshot Before = obs::snapshot();
  RockerReport R = checkRobustness(P, O);
  obs::Snapshot D = obs::diff(obs::snapshot(), Before);
  ASSERT_TRUE(R.Complete);
  double Sum = D.attributedSeconds();
  EXPECT_NEAR(Sum, R.Stats.Seconds, 0.05 * R.Stats.Seconds + 0.002)
      << "phase times must sum to the exploration wall time";
  // The hot-loop phases dominate; the monitor and visited set both saw
  // real work.
  EXPECT_GT(D.phase(obs::Phase::Explore), 0.0);
  EXPECT_GT(D.phase(obs::Phase::VisitedProbe), 0.0);
  EXPECT_GT(D.counter(obs::Ctr::MonitorChecks), 0u);
  EXPECT_EQ(D.counter(obs::Ctr::VisitedInserts), R.Stats.NumStates);
  EXPECT_EQ(D.counter(obs::Ctr::DedupHits), R.Stats.DedupHits);
}

// Retired-thread fold: a worker that records span time and counters and
// then *exits* must still be visible to a later snapshot() — its
// ThreadBlock is folded into the registry's retired totals on thread
// exit, not dropped. (CountersAggregateAcrossThreads covers the counter
// half; this pins the phase-cycle half, which takes a different path
// through the cycles→seconds calibration.)
TEST(Telemetry, RetiredThreadSnapshotFold) {
  obs::Snapshot Before = obs::snapshot();
  std::thread Worker([] {
    obs::Span S(obs::Phase::OracleSweep);
    busyWait(20);
    obs::add(obs::Ctr::SweptStates, 7);
  });
  Worker.join(); // The worker's block is retired before this snapshot.
  obs::Snapshot D = obs::diff(obs::snapshot(), Before);
  EXPECT_NEAR(D.phase(obs::Phase::OracleSweep), 0.020, 0.015)
      << "retired thread's span cycles were lost in the fold";
  EXPECT_EQ(D.counter(obs::Ctr::SweptStates), 7u)
      << "retired thread's counters were lost in the fold";
}

TEST(Telemetry, CompiledIn) {
  EXPECT_TRUE(obs::telemetryEnabled());
  EXPECT_GT(sizeof(obs::Span), 1u); // Holds a TLS reference + phase.
}

#else // ROCKER_NO_TELEMETRY

TEST(Telemetry, CompiledOut) {
  EXPECT_FALSE(obs::telemetryEnabled());
  EXPECT_EQ(sizeof(obs::Span), 1u); // Empty shell.
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(S.attributedSeconds(), 0.0);
  for (unsigned I = 0; I != obs::NumCounters; ++I)
    EXPECT_EQ(S.Counters[I], 0u);
}

#endif // ROCKER_NO_TELEMETRY

TEST(Telemetry, ProgressReporterShutsDownCleanly) {
  // A run faster than the reporter interval: destruction must join the
  // thread promptly mid-interval, not wait the interval out.
  auto T0 = std::chrono::steady_clock::now();
  {
    obs::ProgressReporter R(/*IntervalSeconds=*/30.0);
    busyWait(5);
  }
  double Waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  EXPECT_LT(Waited, 5.0) << "reporter destruction blocked on its interval";

  // stop() is idempotent, and an inert (<= 0 interval) reporter is safe.
  obs::ProgressReporter R2(0.05);
  R2.stop();
  R2.stop();
  obs::ProgressReporter Inert(0);
  Inert.stop();
}

TEST(Telemetry, ProgressDoesNotChangeVerdicts) {
  Program P = findCorpusEntry("SB").parse();
  RockerOptions O;
  O.RecordTrace = false;
  RockerReport Plain = checkRobustness(P, O);
  RockerReport WithProgress = [&] {
    obs::ProgressReporter R(0.01); // Fires several times during the run.
    busyWait(25);                  // Let it tick with no run active, too.
    return checkRobustness(P, O);
  }();
  EXPECT_EQ(Plain.Robust, WithProgress.Robust);
  EXPECT_EQ(Plain.Stats.NumStates, WithProgress.Stats.NumStates);
  EXPECT_EQ(Plain.Stats.NumTransitions, WithProgress.Stats.NumTransitions);
}

TEST(Json, ParseBasics) {
  auto V = obs::json::parse(
      R"({"a": [1, 2.5, "x\n", true, null], "b": {}, "c": -3})");
  ASSERT_TRUE(V.has_value());
  const obs::json::Value *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->items().size(), 5u);
  EXPECT_EQ(A->items()[0].asUInt(), 1u);
  EXPECT_DOUBLE_EQ(A->items()[1].asDouble(), 2.5);
  EXPECT_EQ(A->items()[2].asString(), "x\n");
  EXPECT_TRUE(A->items()[3].asBool());
  EXPECT_TRUE(A->items()[4].isNull());
  ASSERT_NE(V->find("b"), nullptr);
  EXPECT_EQ(V->find("b")->members().size(), 0u);
  EXPECT_DOUBLE_EQ(V->find("c")->asDouble(), -3.0);

  EXPECT_FALSE(obs::json::parse("{").has_value());
  EXPECT_FALSE(obs::json::parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::parse("{} trailing").has_value());
  EXPECT_FALSE(obs::json::parse("\"unterminated").has_value());
}

// A report must survive dump → parse with its key fields intact — this is
// the schema contract bench/report_diff.py relies on.
TEST(Json, RunReportRoundTrip) {
  Program P = findCorpusEntry("SB").parse();
  RockerOptions O;
  O.RecordTrace = false;
  obs::Snapshot Before = obs::snapshot();
  RockerReport R = checkRobustness(P, O);
  obs::RunReport Rep = obs::buildRunReport("SB", "robustness", O, R,
                                           Before, obs::snapshot());
  std::string Text = obs::toJson(Rep).dump();
  auto V = obs::json::parse(Text);
  ASSERT_TRUE(V.has_value()) << "report does not re-parse:\n" << Text;

  EXPECT_EQ(V->find("schema")->asString(), "rocker-run-report/1");
  EXPECT_EQ(V->find("program")->asString(), "SB");
  EXPECT_EQ(V->find("mode")->asString(), "robustness");
  EXPECT_EQ(V->find("verdict")->find("robust")->asBool(), R.Robust);
  EXPECT_EQ(V->find("verdict")->find("violations")->asUInt(),
            R.Violations.size());
  EXPECT_EQ(V->find("stats")->find("states")->asUInt(), R.Stats.NumStates);
  EXPECT_EQ(V->find("config")->find("engine")->asString(), "sequential");
  EXPECT_EQ(V->find("tool")->find("telemetry")->asBool(),
            obs::telemetryEnabled());

  // One phase entry per non-idle phase, one counter entry per counter.
  const obs::json::Value *Phases = V->find("telemetry")->find("phases");
  ASSERT_NE(Phases, nullptr);
  EXPECT_EQ(Phases->members().size(), obs::NumPhases - 1 + 1); // + total.
  const obs::json::Value *Counters = V->find("telemetry")->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->members().size(), obs::NumCounters);

  // Workers array mirrors ExploreStats::Workers.
  const obs::json::Value *Workers = V->find("workers");
  ASSERT_NE(Workers, nullptr);
  ASSERT_EQ(Workers->items().size(), R.Stats.Workers.size());
  EXPECT_EQ(Workers->items()[0].find("expanded")->asUInt(),
            R.Stats.Workers[0].Expanded);
}

TEST(Json, DumpEscapesAndReparses) {
  obs::json::Value O = obs::json::Value::object();
  O.set("s", std::string("quote\" slash\\ nl\n tab\t ctl\x01"));
  O.set("big", static_cast<uint64_t>(1) << 62);
  O.set("neg", -1.5);
  auto V = obs::json::parse(O.dump());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->find("s")->asString(), "quote\" slash\\ nl\n tab\t ctl\x01");
  EXPECT_EQ(V->find("big")->asUInt(), static_cast<uint64_t>(1) << 62);
  EXPECT_DOUBLE_EQ(V->find("neg")->asDouble(), -1.5);
}
