//===- tests/TSOTest.cpp - TSO robustness baseline tests --------------------===//

#include "litmus/Corpus.h"
#include "rocker/RobustnessChecker.h"
#include "tso/TSORobustness.h"

#include <gtest/gtest.h>

using namespace rocker;

TEST(TSOLowering, ExpandsBlockingInstructions) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x y
thread t0
  x := 1
  wait(y == 1)
  BCAS(x, 1 => 0)
  if 1 goto 0
)");
  Program L = lowerBlockingInstructions(P);
  // wait -> load+branch, BCAS -> CAS+branch: 4 insts become 6.
  EXPECT_EQ(L.Threads[0].Insts.size(), 6u);
  // The trailing branch must be retargeted to the same instruction.
  EXPECT_EQ(std::get<IfGotoInst>(L.Threads[0].Insts[5]).Target, 0u);
  // The lowered loops must target their own load/CAS.
  EXPECT_EQ(std::get<IfGotoInst>(L.Threads[0].Insts[2]).Target, 1u);
  EXPECT_EQ(std::get<IfGotoInst>(L.Threads[0].Insts[4]).Target, 3u);
  EXPECT_TRUE(L.validate().empty());
}

TEST(TSOLowering, PreservesSCBehavior) {
  // Lowering must not change reachability of the final state under SC.
  Program P = findCorpusEntry("barrier").parse();
  Program L = lowerBlockingInstructions(P);
  RockerReport R = exploreSC(L);
  EXPECT_TRUE(R.Robust);
}

TEST(TSORobustness, LitmusVerdicts) {
  // SB: not TSO-robust. MP/IRIW/2+2W/2RMW: TSO-robust (Sections 3,8).
  struct Case {
    const char *Name;
    bool Robust;
  };
  const Case Cases[] = {
      {"SB", false},   {"MP", true},      {"IRIW", true},
      {"2+2W", true},  {"2RMW", true},    {"SB+RMWs", true},
      {"barrier-loop", false},
  };
  for (const Case &C : Cases) {
    Program P = findCorpusEntry(C.Name).parse();
    TSOOptions O;
    TSORobustnessResult R = checkTSORobustness(P, O);
    ASSERT_TRUE(R.Complete) << C.Name;
    EXPECT_EQ(R.Robust, C.Robust) << C.Name;
  }
}

TEST(TSORobustness, RAGRobustImpliesTSORobustOnCorpus) {
  // RA is weaker than TSO, so execution-graph robustness against RA
  // implies state robustness against TSO (with blocking primitives kept).
  for (const CorpusEntry &E : litmusTests()) {
    Program P = E.parse();
    RockerOptions RO;
    RO.CheckAssertions = false;
    RO.CheckRaces = false;
    if (!checkRobustness(P, RO).Robust)
      continue;
    TSOOptions TO;
    TO.TrencherMode = false;
    TSORobustnessResult T = checkTSORobustness(P, TO);
    if (!T.Complete)
      continue;
    EXPECT_TRUE(T.Robust) << E.Name;
  }
}

TEST(TSORobustness, TrencherModeIsStricterOnBlockingPrograms) {
  // barrier: robust with blocking waits, non-robust once lowered.
  Program P = findCorpusEntry("barrier-wait").parse();
  TSOOptions Keep;
  Keep.TrencherMode = false;
  EXPECT_TRUE(checkTSORobustness(P, Keep).Robust);
  TSOOptions Lower;
  Lower.TrencherMode = true;
  EXPECT_FALSE(checkTSORobustness(P, Lower).Robust);
}
