//===- tests/MonitorInvariantsTest.cpp - SCM structural invariants ----------===//
//
// Structural invariants of SCM states, implied by their graph
// interpretations (Section 5) and checked along random SCG runs:
//
//  * x ∈ MSC(x) and x ∈ WSC(x)      (wmax_x trivially reaches itself);
//  * WSC(x) ⊆ MSC(x)                 (stated explicitly in the paper);
//  * the writing thread is always hbSC-aware of its own write:
//    x ∈ VSC(τ) right after τ writes x;
//  * V(τ,x) never contains... the mo-maximal value is excluded by
//    construction only as a *write*; value sets stay within the domain;
//  * VRMW ⊆ V and WRMW ⊆ W pointwise  (the RMW variants only add the
//    mo|imm;[RMW] exclusion);
//  * serialization is injective on distinct states and stable on equal
//    ones.
//
//===----------------------------------------------------------------------===//

#include "monitor/SCMState.h"

#include "lang/Program.h"

#include <gtest/gtest.h>

#include <random>

using namespace rocker;

namespace {

Program configProgram(unsigned Threads, unsigned Locs, unsigned Vals) {
  ProgramBuilder B("inv", Vals);
  std::vector<LocId> Ls;
  for (unsigned L = 0; L != Locs; ++L)
    Ls.push_back(B.addLoc("x" + std::to_string(L)));
  for (unsigned T = 0; T != Threads; ++T) {
    B.beginThread();
    B.load(B.reg("r"), Ls[0]);
    // A CAS makes value 1 critical for x1 (mixed tracking in abstract
    // mode).
    if (Locs > 1)
      B.cas(B.reg("c"), Ls[1], Expr::makeConst(1), Expr::makeConst(0));
  }
  return B.build();
}

void checkInvariants(const Program &P, const SCMonitor &Mon,
                     const SCMState &S) {
  unsigned NumLocs = P.numLocs();
  BitSet64 Ra = P.raLocs();
  for (unsigned X : Ra) {
    EXPECT_TRUE(S.MSC[X].contains(X));
    EXPECT_TRUE(S.WSC[X].contains(X));
    // WSC(x) ⊆ MSC(x).
    EXPECT_TRUE((S.WSC[X] - S.MSC[X]).empty());
    // W(x)(x) = ∅: every non-maximal write to x is mo-before wmax_x.
    EXPECT_TRUE(S.W[X * NumLocs + X].empty());
    EXPECT_TRUE(S.WRmw[X * NumLocs + X].empty());
  }
  BitSet64 Domain = BitSet64::allBelow(P.NumVals);
  for (unsigned T = 0; T != P.numThreads(); ++T) {
    for (unsigned X : Ra) {
      const BitSet64 &V = S.V[T * NumLocs + X];
      const BitSet64 &VR = S.VRmw[T * NumLocs + X];
      EXPECT_TRUE((V - Domain).empty());
      EXPECT_TRUE((VR - V).empty()) << "VRMW ⊄ V";
    }
  }
  for (unsigned X : Ra)
    for (unsigned Y : Ra)
      EXPECT_TRUE(
          (S.WRmw[X * NumLocs + Y] - S.W[X * NumLocs + Y]).empty());
}

void runInvariantWalk(bool Abstract, uint32_t Seed) {
  Program P = configProgram(3, 3, 3);
  SCMonitor Mon(P, Abstract);
  std::mt19937 Rng(Seed);
  auto Pick = [&](unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  };
  for (unsigned Run = 0; Run != 50; ++Run) {
    SCMState S = Mon.initial();
    checkInvariants(P, Mon, S);
    for (unsigned Step = 0; Step != 20; ++Step) {
      ThreadId T = static_cast<ThreadId>(Pick(3));
      LocId X = static_cast<LocId>(Pick(3));
      switch (Pick(3)) {
      case 0: {
        Mon.stepWrite(S, T, X, static_cast<Val>(Pick(3)), false);
        // The writer is hbSC-aware of its own new wmax.
        EXPECT_TRUE(S.VSC[T].contains(X));
        break;
      }
      case 1:
        Mon.stepRead(S, T, X, false);
        EXPECT_TRUE(S.VSC[T].contains(X)); // It just read wmax_x.
        break;
      case 2:
        Mon.stepRmw(S, T, X, static_cast<Val>(Pick(3)));
        EXPECT_TRUE(S.VSC[T].contains(X));
        break;
      }
      checkInvariants(P, Mon, S);
    }
  }
}

} // namespace

TEST(MonitorInvariants, FullMode) { runInvariantWalk(false, 101); }
TEST(MonitorInvariants, AbstractMode) { runInvariantWalk(true, 202); }

TEST(MonitorInvariants, SerializationConsistentWithEquality) {
  Program P = configProgram(2, 2, 3);
  SCMonitor Mon(P, false);
  SCMState A = Mon.initial();
  SCMState B = Mon.initial();
  std::string KA, KB;
  Mon.serialize(A, KA);
  Mon.serialize(B, KB);
  EXPECT_EQ(KA, KB);

  Mon.stepWrite(A, 0, 0, 1, false);
  KA.clear();
  Mon.serialize(A, KA);
  EXPECT_NE(KA, KB);
  EXPECT_FALSE(A == B);

  // Same step sequence from both sides must converge to equal states and
  // equal keys.
  Mon.stepWrite(B, 0, 0, 1, false);
  KB.clear();
  Mon.serialize(B, KB);
  EXPECT_EQ(KA, KB);
  EXPECT_TRUE(A == B);
}

TEST(MonitorInvariants, NaAccessesLeaveInstrumentationUntouched) {
  ProgramBuilder Bd("na", 3);
  LocId X = Bd.addLoc("x");
  LocId D = Bd.addNaLoc("d");
  Bd.beginThread();
  Bd.load(Bd.reg("r"), X);
  Bd.beginThread();
  Bd.load(Bd.reg("r"), D);
  Program P = Bd.build();
  SCMonitor Mon(P, false);

  SCMState S = Mon.initial();
  SCMState Before = S;
  Mon.stepWrite(S, 1, D, 2, /*IsNA=*/true);
  // Only M changed.
  EXPECT_EQ(S.M[D], 2);
  SCMState Cmp = S;
  Cmp.M = Before.M;
  EXPECT_TRUE(Cmp == Before);
  (void)X;
}
