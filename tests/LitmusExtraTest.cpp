//===- tests/LitmusExtraTest.cpp - Extended litmus catalog tests ------------===//
//
// Every extended litmus test's expected verdict must match both Rocker
// and the direct RAG oracle (these entries are loop-free or small enough
// for the oracle), in both monitor modes.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "rocker/Oracles.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

using namespace rocker;

class ExtraLitmus : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraLitmus, RockerAndOracleMatchExpectation) {
  const CorpusEntry &E = findCorpusEntry(GetParam());
  Program P = E.parse();

  RockerOptions Full;
  Full.UseCriticalAbstraction = false;
  Full.CheckRaces = false;
  RockerReport RF = checkRobustness(P, Full);
  ASSERT_TRUE(RF.Complete);
  EXPECT_EQ(RF.Robust, E.ExpectRobust)
      << E.Name << "\n" << RF.FirstViolationText;

  RockerOptions Abs = Full;
  Abs.UseCriticalAbstraction = true;
  EXPECT_EQ(checkRobustness(P, Abs).Robust, E.ExpectRobust) << E.Name;

  OracleResult O = checkGraphRobustnessOracle(P, 3'000'000);
  ASSERT_TRUE(O.Complete) << E.Name;
  EXPECT_EQ(O.Robust, E.ExpectRobust) << E.Name << "\n" << O.Detail;
}

static std::vector<std::string> names() {
  std::vector<std::string> Ns;
  for (const CorpusEntry &E : extraLitmusTests())
    Ns.push_back(E.Name);
  return Ns;
}

INSTANTIATE_TEST_SUITE_P(
    All, ExtraLitmus, ::testing::ValuesIn(names()),
    [](const ::testing::TestParamInfo<std::string> &I) {
      std::string N = I.param;
      for (char &C : N)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return N;
    });
