//===- tests/TraceTest.cpp - Flight-recorder correctness --------------------===//
//
// Covers src/obs/Trace: the --trace spec grammar, the Chrome trace-event
// JSON the serializer writes (envelope, metadata, balanced B/E nesting,
// per-thread timestamp monotonicity), verdict neutrality of recording at
// one and four engine threads, the ring-capacity clamp, and the readable
// crash dump. When telemetry is compiled out (-DROCKER_NO_TELEMETRY) the
// recorder degrades to inert stubs, asserted in the compile-out section.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <unistd.h>

using namespace rocker;

namespace {

std::string tmpPath(const char *Stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string(Stem) + "." + std::to_string(::getpid()) + ".json"))
      .string();
}

/// Stops the recorder and removes the trace artifacts whether or not the
/// test body reached its own cleanup — recorder state is process-global
/// and must not leak into the next test.
struct TraceCleanup {
  std::string Path;
  explicit TraceCleanup(std::string P) : Path(std::move(P)) {}
  ~TraceCleanup() {
    obs::traceStop();
    std::error_code Ec;
    std::filesystem::remove(Path, Ec);
    std::filesystem::remove(Path + ".crash.txt", Ec);
  }
};

} // namespace

TEST(TraceSpec, ParseGrammar) {
  auto S = obs::parseTraceSpec("out.json");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Path, "out.json");
  EXPECT_EQ(S->Cap, 0u); // 0 = default capacity.

  S = obs::parseTraceSpec("out.json:4096");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Path, "out.json");
  EXPECT_EQ(S->Cap, 4096u);

  // A non-numeric suffix is part of the path, not a cap.
  S = obs::parseTraceSpec("dir:with:colons/out.json");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Path, "dir:with:colons/out.json");
  EXPECT_EQ(S->Cap, 0u);

  // Only the last colon-group counts, so paths with colons still take
  // a cap.
  S = obs::parseTraceSpec("a:b/out.json:512");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Path, "a:b/out.json");
  EXPECT_EQ(S->Cap, 512u);

  // A trailing bare colon is kept as path text (empty suffix is not a
  // cap), and empty or null specs are rejected.
  S = obs::parseTraceSpec("out.json:");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Path, "out.json:");
  EXPECT_FALSE(obs::parseTraceSpec("").has_value());
  EXPECT_FALSE(obs::parseTraceSpec(nullptr).has_value());
  EXPECT_FALSE(obs::parseTraceSpec(":123").has_value());
}

#ifndef ROCKER_NO_TELEMETRY

namespace {

/// Structural validation of a serialized trace (the C++ twin of
/// bench/trace_check.py): envelope, per-(pid,tid) timestamp
/// monotonicity, balanced B/E nesting, and named non-E events.
void validateTrace(const std::string &Path, uint64_t *NumEvents = nullptr,
                   const obs::json::Value **DocOut = nullptr,
                   std::optional<obs::json::Value> *Keep = nullptr) {
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "trace file missing: " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  auto Doc = obs::json::parse(Buf.str());
  ASSERT_TRUE(Doc.has_value()) << "trace is not valid JSON";
  const obs::json::Value *Evs = Doc->find("traceEvents");
  ASSERT_NE(Evs, nullptr) << "missing traceEvents envelope";

  std::map<std::pair<uint64_t, uint64_t>, double> LastTs;
  std::map<std::pair<uint64_t, uint64_t>, int> Depth;
  bool SawProcessName = false;
  for (const obs::json::Value &E : Evs->items()) {
    const obs::json::Value *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    std::string P = Ph->asString();
    ASSERT_NE(E.find("pid"), nullptr);
    ASSERT_NE(E.find("tid"), nullptr);
    std::pair<uint64_t, uint64_t> Key = {E.find("pid")->asUInt(),
                                         E.find("tid")->asUInt()};
    if (P != "E")
      ASSERT_NE(E.find("name"), nullptr) << P << " event without a name";
    if (P == "M") {
      if (E.find("name")->asString() == "process_name")
        SawProcessName = true;
      continue; // Metadata carries no timestamp.
    }
    const obs::json::Value *Ts = E.find("ts");
    ASSERT_NE(Ts, nullptr) << P << " event without ts";
    double T = Ts->asDouble();
    // Counter events are exempt from the file-order monotonicity check:
    // the derived rate tracks are appended after the rings and viewers
    // sort by ts. Order carries semantics only for span nesting.
    if (P != "C") {
      auto It = LastTs.find(Key);
      if (It != LastTs.end())
        EXPECT_GE(T, It->second) << "timestamps not monotonic on tid "
                                 << Key.second;
      LastTs[Key] = T;
    }
    if (P == "B")
      ++Depth[Key];
    else if (P == "E") {
      EXPECT_GT(Depth[Key], 0) << "E without matching B on tid "
                               << Key.second;
      --Depth[Key];
    }
  }
  for (const auto &[Key, D] : Depth)
    EXPECT_EQ(D, 0) << D << " span(s) left open on tid " << Key.second;
  EXPECT_TRUE(SawProcessName) << "missing process_name metadata";
  if (NumEvents)
    *NumEvents = Evs->items().size();
  if (DocOut && Keep) {
    *Keep = std::move(Doc);
    *DocOut = &**Keep;
  }
}

} // namespace

TEST(Trace, RecordsAndWritesPerfettoJson) {
  std::string Path = tmpPath("trace-basic");
  TraceCleanup Guard(Path);
  ASSERT_TRUE(obs::traceConfigure(Path));
  EXPECT_TRUE(obs::traceConfigured());
  EXPECT_EQ(obs::traceConfiguredPath(), Path);

  Program P = findCorpusEntry("lamport2-ra").parse();
  RockerOptions O;
  O.StopOnViolation = false;
  O.RecordTrace = false;
  RockerReport R = checkRobustness(P, O);
  ASSERT_TRUE(R.Complete);

  obs::traceStop();
  obs::TraceWriteResult W = obs::traceWrite();
  ASSERT_TRUE(W.Ok) << W.Error;
  EXPECT_GT(W.Events, 0u);

  std::optional<obs::json::Value> Keep;
  const obs::json::Value *Doc = nullptr;
  uint64_t NumEvents = 0;
  validateTrace(Path, &NumEvents, &Doc, &Keep);
  if (HasFatalFailure())
    return;
  EXPECT_GT(NumEvents, 0u);

  // The engine lifecycle and the periodic counter tracks made it in.
  bool SawStart = false, SawStop = false, SawCounter = false,
       SawSpan = false;
  for (const obs::json::Value &E : Doc->find("traceEvents")->items()) {
    const obs::json::Value *Name = E.find("name");
    std::string N = Name ? Name->asString() : "";
    SawStart |= N == "engine_start";
    SawStop |= N == "engine_stop";
    SawCounter |= E.find("ph")->asString() == "C";
    SawSpan |= E.find("ph")->asString() == "B";
  }
  EXPECT_TRUE(SawStart);
  EXPECT_TRUE(SawStop);
  EXPECT_TRUE(SawCounter);
  EXPECT_TRUE(SawSpan);
}

TEST(Trace, VerdictsIdenticalUnderTracing) {
  Program P = findCorpusEntry("peterson-ra").parse();
  for (unsigned Threads : {1u, 4u}) {
    RockerOptions O;
    O.RecordTrace = false;
    O.StopOnViolation = false;
    O.Threads = Threads;
    RockerReport Plain = checkRobustness(P, O);

    std::string Path = tmpPath("trace-verdict");
    TraceCleanup Guard(Path);
    ASSERT_TRUE(obs::traceConfigure(Path));
    RockerReport Traced = checkRobustness(P, O);
    obs::traceStop();
    obs::TraceWriteResult W = obs::traceWrite();
    ASSERT_TRUE(W.Ok) << W.Error;

    EXPECT_EQ(Plain.Robust, Traced.Robust) << Threads << " threads";
    EXPECT_EQ(Plain.Stats.NumStates, Traced.Stats.NumStates)
        << Threads << " threads";
    validateTrace(Path);
    if (HasFatalFailure())
      return;
  }
}

TEST(Trace, RingCapacityIsClampedAndOverwritesOldest) {
  std::string Path = tmpPath("trace-cap");
  TraceCleanup Guard(Path);
  // 10 is below the 256 minimum: clamped up, never under-allocated.
  ASSERT_TRUE(obs::traceConfigure(Path, 10));
  for (unsigned I = 0; I != 10'000; ++I)
    obs::traceInstant(obs::TraceInstant::CacheHit, I);
  obs::traceStop();
  obs::TraceWriteResult W = obs::traceWrite();
  ASSERT_TRUE(W.Ok) << W.Error;
  // The ring kept only the newest window (256 slots on this thread),
  // not all 10k pushes; rate-track derivation may add a handful.
  EXPECT_LE(W.Events, 600u);
  EXPECT_GE(W.Events, 256u);

  std::optional<obs::json::Value> Keep;
  const obs::json::Value *Doc = nullptr;
  validateTrace(Path, nullptr, &Doc, &Keep);
  if (HasFatalFailure())
    return;
  // Overwrite-oldest: the newest instant (arg 9999) survives.
  bool SawNewest = false;
  for (const obs::json::Value &E : Doc->find("traceEvents")->items()) {
    const obs::json::Value *Args = E.find("args");
    if (Args && Args->find("arg") && Args->find("arg")->asUInt() == 9999)
      SawNewest = true;
  }
  EXPECT_TRUE(SawNewest);
}

TEST(Trace, CrashDumpIsReadableText) {
  std::string Path = tmpPath("trace-crash");
  TraceCleanup Guard(Path);
  ASSERT_TRUE(obs::traceConfigure(Path));
  EXPECT_EQ(obs::traceCrashDumpPath(), Path + ".crash.txt");

  obs::traceInstant(obs::TraceInstant::WatchdogFired, 42);
  ASSERT_TRUE(obs::traceCrashDump("unit-test reason"));

  std::ifstream In(Path + ".crash.txt");
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  EXPECT_NE(Text.find("flight-recorder crash dump"), std::string::npos);
  EXPECT_NE(Text.find("reason: unit-test reason"), std::string::npos);
  EXPECT_NE(Text.find("watchdog arg=42"), std::string::npos);

  // The dump path override used by checkpointed engines sticks.
  std::string Alt = Path + ".alt.txt";
  obs::traceSetCrashDumpPath(Alt);
  EXPECT_EQ(obs::traceCrashDumpPath(), Alt);
  ASSERT_TRUE(obs::traceCrashDump("second reason", 8));
  std::ifstream In2(Alt);
  ASSERT_TRUE(In2.good());
  std::error_code Ec;
  std::filesystem::remove(Alt, Ec);
}

TEST(Trace, WriteWithoutConfigureFails) {
  // Fresh processes never write implicitly. (traceConfigured may be true
  // from an earlier test in this binary; what must hold is that a write
  // to an unwritable target reports failure, not silence.)
  obs::TraceWriteResult W = obs::traceWriteTo("");
  EXPECT_FALSE(W.Ok);
  EXPECT_FALSE(W.Error.empty());
  W = obs::traceWriteTo("/nonexistent-dir-for-rocker-test/t.json");
  EXPECT_FALSE(W.Ok);
  EXPECT_FALSE(W.Error.empty());
}

#else // ROCKER_NO_TELEMETRY

TEST(Trace, CompiledOutIsInert) {
  EXPECT_FALSE(obs::traceSupported());
  EXPECT_FALSE(obs::traceConfigure("/tmp/never-written.json"));
  EXPECT_FALSE(obs::traceConfigured());
  obs::traceInstant(obs::TraceInstant::EngineStart);
  obs::traceCounter(obs::TraceCounterTrack::States, 1);
  obs::traceThreadName("x");
  obs::TraceWriteResult W = obs::traceWrite();
  EXPECT_FALSE(W.Ok);
  EXPECT_FALSE(obs::traceCrashDump("reason"));
  EXPECT_FALSE(std::filesystem::exists("/tmp/never-written.json"));
}

#endif // ROCKER_NO_TELEMETRY
