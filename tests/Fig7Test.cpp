//===- tests/Fig7Test.cpp - Figure 7 corpus verdict tests -------------------===//
//
// Every Figure 7 program must get the paper's robustness verdict (the
// "Res" column), every mutual-exclusion harness must pass its assertions
// under SC, and the TSO baseline must match the non-starred Trencher
// column. The heavyweight rows (hundreds of thousands of states) are
// split out so they can be filtered.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "rocker/RobustnessChecker.h"
#include "tso/TSORobustness.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

bool isHeavy(const std::string &Name) {
  return Name == "seqlock" || Name == "nbw-w-lr-rl" || Name == "rcu" ||
         Name == "rcu-offline" || Name == "lamport2-3-ra";
}

void checkEntry(const CorpusEntry &E) {
  Program P = E.parse();
  EXPECT_EQ(P.numThreads(), E.PaperThreads) << E.Name;

  RockerOptions O;
  O.RecordTrace = false;
  O.MaxStates = 8'000'000;
  RockerReport R = checkRobustness(P, O);
  ASSERT_TRUE(R.Complete) << E.Name;
  EXPECT_EQ(R.Robust, E.ExpectRobust) << E.Name;

  // Robust entries must also be SC-assertion-clean (their critical
  // sections carry mutual-exclusion asserts).
  RockerReport SC = exploreSC(P, O);
  EXPECT_TRUE(SC.Robust) << E.Name << " fails under SC: "
                         << SC.FirstViolationText;
}

} // namespace

class Fig7Light : public ::testing::TestWithParam<std::string> {};
class Fig7Heavy : public ::testing::TestWithParam<std::string> {};

TEST_P(Fig7Light, VerdictMatchesPaper) {
  checkEntry(findCorpusEntry(GetParam()));
}

TEST_P(Fig7Heavy, VerdictMatchesPaper) {
  checkEntry(findCorpusEntry(GetParam()));
}

static std::vector<std::string> fig7Names(bool Heavy) {
  std::vector<std::string> Names;
  for (const CorpusEntry &E : figure7Programs())
    if (isHeavy(E.Name) == Heavy)
      Names.push_back(E.Name);
  return Names;
}

static std::string sanitize(const ::testing::TestParamInfo<std::string> &I) {
  std::string Name = I.param;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(All, Fig7Light,
                         ::testing::ValuesIn(fig7Names(false)), sanitize);
INSTANTIATE_TEST_SUITE_P(All, Fig7Heavy,
                         ::testing::ValuesIn(fig7Names(true)), sanitize);

TEST(Fig7Tso, TrencherBaselineMatchesNonStarredColumn) {
  for (const CorpusEntry &E : figure7Programs()) {
    if (!E.ExpectTsoTrencher || E.TrencherStar || isHeavy(E.Name))
      continue;
    Program P = E.parse();
    TSOOptions TO;
    TO.TrencherMode = true;
    TO.MaxStates = 6'000'000;
    TSORobustnessResult T = checkTSORobustness(P, TO);
    ASSERT_TRUE(T.Complete) << E.Name;
    EXPECT_EQ(T.Robust, *E.ExpectTsoTrencher) << E.Name;
  }
}

TEST(Fig7Tso, BarrierStarReproduced) {
  // The barrier is robust with blocking waits but its trencher-lowered
  // form is not TSO-robust — the paper's ✗⋆ entry.
  const CorpusEntry &E = findCorpusEntry("barrier");
  Program P = E.parse();
  TSOOptions Lowered;
  Lowered.TrencherMode = true;
  EXPECT_FALSE(checkTSORobustness(P, Lowered).Robust);
  TSOOptions Blocking;
  Blocking.TrencherMode = false;
  EXPECT_TRUE(checkTSORobustness(P, Blocking).Robust);
}
