//===- tests/TestHelpers.h - Shared test utilities -------------*- C++ -*-===//
///
/// \file
/// Random program generation for the cross-validation property tests, and
/// small helpers shared between test files.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKER_TESTS_TESTHELPERS_H
#define ROCKER_TESTS_TESTHELPERS_H

#include "lang/Program.h"

#include <random>

namespace rocker::test {

struct RandomProgramOptions {
  unsigned MaxThreads = 3;
  unsigned MaxLocs = 3;
  unsigned MaxVals = 3;
  unsigned MaxInstsPerThread = 5;
  bool AllowBranches = true;  ///< Forward branches only (loop-free).
  bool AllowBlocking = false; ///< wait/BCAS (may deadlock; fine for BFS).
  unsigned NumNaLocs = 0;     ///< Trailing locations become non-atomic.
};

/// Generates a random loop-free concurrent program. The mix is biased
/// toward stores/loads with occasional RMWs so that both robust and
/// non-robust programs are common.
inline Program randomProgram(std::mt19937 &Rng,
                             const RandomProgramOptions &O = {}) {
  auto Pick = [&](unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  };
  unsigned NumVals = 2 + Pick(O.MaxVals - 1);
  unsigned NumLocs = 2 + Pick(O.MaxLocs - 1);
  unsigned NumThreads = 2 + Pick(O.MaxThreads - 1);

  ProgramBuilder B("fuzz", NumVals);
  std::vector<LocId> Locs;
  for (unsigned L = 0; L != NumLocs; ++L)
    Locs.push_back(B.addLoc("x" + std::to_string(L)));
  std::vector<LocId> NaLocs;
  for (unsigned L = 0; L != O.NumNaLocs; ++L)
    NaLocs.push_back(B.addNaLoc("d" + std::to_string(L)));

  for (unsigned T = 0; T != NumThreads; ++T) {
    B.beginThread();
    unsigned NumInsts = 2 + Pick(O.MaxInstsPerThread - 1);
    for (unsigned I = 0; I != NumInsts; ++I) {
      LocId X = Locs[Pick(NumLocs)];
      Val C = static_cast<Val>(Pick(NumVals));
      Val C2 = static_cast<Val>(Pick(NumVals));
      RegId R = B.reg("r" + std::to_string(Pick(3)));
      if (!NaLocs.empty() && Pick(4) == 0) {
        // A non-atomic access (plain load/store only).
        LocId D = NaLocs[Pick(NaLocs.size())];
        if (Pick(2))
          B.store(D, Expr::makeConst(C));
        else
          B.load(R, D);
        continue;
      }
      switch (Pick(O.AllowBlocking ? 9 : 8)) {
      case 0:
      case 1:
      case 2:
        B.store(X, Expr::makeConst(C));
        break;
      case 3:
      case 4:
        B.load(R, X);
        break;
      case 5:
        B.fadd(R, X, Expr::makeConst(1));
        break;
      case 6:
        B.cas(R, X, Expr::makeConst(C), Expr::makeConst(C2));
        break;
      case 7:
        if (O.AllowBranches && I + 2 < NumInsts) {
          uint32_t Target =
              B.nextPc() + 2 + Pick(NumInsts - I - 2);
          B.ifGoto(Expr::makeBinary(Expr::BinOp::Eq, Expr::makeReg(R),
                                    Expr::makeConst(C)),
                   Target);
        } else {
          B.xchg(R, X, Expr::makeConst(C));
        }
        break;
      case 8:
        B.wait(X, Expr::makeConst(C));
        break;
      }
    }
  }
  return B.build();
}

} // namespace rocker::test

#endif // ROCKER_TESTS_TESTHELPERS_H
