//===- tests/MonitorLemma52Test.cpp - Lemma 5.2 simulation property ---------===//
//
// Lemma 5.2 (Coq-verified in the paper): along any SCG run, the
// incremental SCM state equals I(G) computed from the execution graph by
// the formal definitions. We replay random SCG label sequences through
// both and compare after every step, in both full and abstract modes.
//
//===----------------------------------------------------------------------===//

#include "graph/ExecutionGraph.h"
#include "monitor/FromGraph.h"
#include "monitor/SCMState.h"

#include <gtest/gtest.h>

#include <random>

using namespace rocker;

namespace {

/// A config program: 3 threads, 3 RA locations, Val = {0,1,2}; contains a
/// wait(x0 == 1) and a CAS(x1, 0 => 2) so that value 1 is critical for x0
/// and value 0 for x1 (exercises the abstract monitor's mixed tracking).
Program configProgram() {
  ProgramBuilder B("lemma52", 3);
  LocId X0 = B.addLoc("x0");
  LocId X1 = B.addLoc("x1");
  B.addLoc("x2");
  B.beginThread();
  B.wait(X0, Expr::makeConst(1));
  B.beginThread();
  B.cas(B.reg("r"), X1, Expr::makeConst(0), Expr::makeConst(2));
  B.beginThread();
  B.load(B.reg("r"), X0);
  return B.build();
}

void runRandomScgRuns(bool Abstract, unsigned NumRuns, unsigned RunLen,
                      uint32_t Seed) {
  Program P = configProgram();
  SCMonitor Mon(P, Abstract);
  std::mt19937 Rng(Seed);
  auto Pick = [&](unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  };

  for (unsigned Run = 0; Run != NumRuns; ++Run) {
    ExecutionGraph G = ExecutionGraph::initial(P.numLocs());
    SCMState S = Mon.initial();
    ASSERT_EQ(S, monitorStateFromGraph(P, Mon, G));

    for (unsigned Step = 0; Step != RunLen; ++Step) {
      ThreadId T = static_cast<ThreadId>(Pick(P.numThreads()));
      LocId X = static_cast<LocId>(Pick(P.numLocs()));
      EventId WMax = G.moMax(X);
      Val Cur = G.event(WMax).L.ValW;
      switch (Pick(3)) {
      case 0: { // Write a random value.
        Val V = static_cast<Val>(Pick(P.NumVals));
        G.add(T, Label::write(X, V), WMax);
        Mon.stepWrite(S, T, X, V, /*IsNA=*/false);
        break;
      }
      case 1: { // Read (SCG: from wmax).
        G.add(T, Label::read(X, Cur), WMax);
        Mon.stepRead(S, T, X, /*IsNA=*/false);
        break;
      }
      case 2: { // RMW (SCG: reads wmax, extends mo).
        Val VW = static_cast<Val>(Pick(P.NumVals));
        G.add(T, Label::rmw(X, Cur, VW), WMax);
        Mon.stepRmw(S, T, X, VW);
        break;
      }
      }
      SCMState FromG = monitorStateFromGraph(P, Mon, G);
      ASSERT_EQ(S, FromG) << "divergence at run " << Run << " step "
                          << Step << " (abstract=" << Abstract << ")\n"
                          << G.toString(&P);
    }
  }
}

} // namespace

TEST(MonitorLemma52, FullMonitorMatchesGraphInterpretation) {
  runRandomScgRuns(/*Abstract=*/false, /*NumRuns=*/60, /*RunLen=*/14,
                   /*Seed=*/1);
}

TEST(MonitorLemma52, AbstractMonitorMatchesGraphInterpretation) {
  runRandomScgRuns(/*Abstract=*/true, /*NumRuns=*/60, /*RunLen=*/14,
                   /*Seed=*/2);
}
