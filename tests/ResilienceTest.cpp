//===- tests/ResilienceTest.cpp - Budgets, checkpoints, fault recovery ------===//
//
// End-to-end contract of the resilience layer:
//
//  * Interrupting a run at an arbitrary point and resuming from its
//    checkpoint reproduces the exact verdict, state count, violation set,
//    and first-violation text of an uninterrupted run — sequential and
//    4-thread, including a fork+SIGKILL loop that kills the process at
//    escalating wall-clock points.
//  * A memory budget one rung too small walks the degradation ladder
//    (exact -> no-payload -> bitstate) with recorded provenance instead of
//    aborting; a clean sweep demotes to BoundedRobust while NotRobust
//    verdicts survive degradation.
//  * Stale, corrupt, and cross-engine checkpoints are rejected with a
//    ResumeError instead of silently mixing incompatible state.
//  * A SIGINT-style stop request drains at a safe point and leaves a
//    final checkpoint behind that a later run can resume from.
//
// Scenarios that need forced failures (deterministic kills, mid-write
// crashes, governor faults, worker stalls, clock skew) only compile when
// the build defines ROCKER_FAULT_INJECT; the CI resilience job builds
// with the option ON.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "memory/SCMemory.h"
#include "obs/Trace.h"
#include "parexplore/ParallelExplorer.h"
#include "resilience/Checkpoint.h"
#include "resilience/Resilience.h"
#include "rocker/RobustnessChecker.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

using namespace rocker;
using resilience::StorageRung;

namespace {

namespace fs = std::filesystem;

std::string tmpPath(const std::string &Stem) {
  return (fs::temp_directory_path() /
          (Stem + "." + std::to_string(::getpid()) + ".rkcp"))
      .string();
}

/// Removes the file (and any checkpoint tmp sibling) on construction and
/// destruction, so tests never see a previous run's leftovers.
struct ScopedFile {
  std::string Path;
  explicit ScopedFile(std::string P) : Path(std::move(P)) { remove(); }
  ~ScopedFile() { remove(); }
  void remove() const {
    std::error_code Ec;
    fs::remove(Path, Ec);
    fs::remove(Path + ".tmp", Ec);
  }
};

RockerOptions baseOpts(unsigned Threads) {
  RockerOptions O;
  O.Threads = Threads;
  return O;
}

/// The resumed run must be indistinguishable from the uninterrupted one:
/// same verdict, same exact full-sweep counters, same violations.
void expectSameOutcome(const RockerReport &Ref, const RockerReport &Got,
                       const std::string &What) {
  EXPECT_EQ(Ref.Robust, Got.Robust) << What;
  EXPECT_EQ(Ref.Complete, Got.Complete) << What;
  EXPECT_EQ(Ref.Stats.NumStates, Got.Stats.NumStates) << What;
  EXPECT_EQ(Ref.Stats.NumTransitions, Got.Stats.NumTransitions) << What;
  EXPECT_EQ(Ref.Stats.NumDeadlockStates, Got.Stats.NumDeadlockStates)
      << What;
  ASSERT_EQ(Ref.Violations.size(), Got.Violations.size()) << What;
  EXPECT_EQ(Ref.FirstViolationText, Got.FirstViolationText) << What;
  ASSERT_EQ(Ref.FirstViolationTrace.size(), Got.FirstViolationTrace.size())
      << What;
  for (size_t I = 0; I != Ref.FirstViolationTrace.size(); ++I) {
    EXPECT_EQ(Ref.FirstViolationTrace[I].Thread,
              Got.FirstViolationTrace[I].Thread)
        << What;
    EXPECT_EQ(Ref.FirstViolationTrace[I].Text,
              Got.FirstViolationTrace[I].Text)
        << What;
  }
}

/// Truncates a run at \p Cut states with a checkpoint, then resumes to
/// completion and compares against the uninterrupted \p Ref.
void truncateThenResume(const Program &P, const RockerReport &Ref,
                        unsigned Threads, uint64_t Cut,
                        bool StopOnViolation) {
  ScopedFile Ckpt(tmpPath("trunc-" + std::to_string(Threads) + "-" +
                          std::to_string(Cut)));
  std::string What = "threads=" + std::to_string(Threads) +
                     " cut=" + std::to_string(Cut);

  RockerOptions Mid = baseOpts(Threads);
  Mid.StopOnViolation = StopOnViolation;
  Mid.MaxStates = Cut;
  Mid.Resilience.CheckpointPath = Ckpt.Path;
  RockerReport M = checkRobustness(P, Mid);
  if (M.Complete) // The cut exceeded the state space: nothing to resume.
    return;
  EXPECT_TRUE(M.Stats.Truncated) << What;
  if (M.Robust) {
    EXPECT_EQ(M.verdictClass(), VerdictClass::BoundedRobust) << What;
  }
  ASSERT_TRUE(fs::exists(Ckpt.Path))
      << What << ": truncated run left no final checkpoint";

  RockerOptions Fin = baseOpts(Threads);
  Fin.StopOnViolation = StopOnViolation;
  Fin.Resilience.ResumePath = Ckpt.Path;
  RockerReport R = checkRobustness(P, Fin);
  ASSERT_TRUE(R.Stats.Resilience.ResumeError.empty())
      << What << ": " << R.Stats.Resilience.ResumeError;
  EXPECT_TRUE(R.Stats.Resilience.Resumed) << What;
  EXPECT_GT(R.Stats.Resilience.RestoredStates, 0u) << What;
  expectSameOutcome(Ref, R, What);
}

/// Body of a forked child: run the checker (optionally resuming), write
/// "robust numstates numviolations" to \p ResultPath, and _exit without
/// ever returning through gtest. \p FiSpec configures fault injection for
/// this process only (a no-op string in non-fi builds).
[[noreturn]] void childCheckRun(const Program &P, const std::string &Ckpt,
                                const std::string &ResultPath, bool Resume,
                                unsigned Threads, const char *FiSpec) {
  fi::configure(FiSpec);
  resilience::clearStopRequest();
  RockerOptions O = baseOpts(Threads);
  O.Resilience.CheckpointPath = Ckpt;
  O.Resilience.CheckpointEveryExpansions = 20;
  if (Resume)
    O.Resilience.ResumePath = Ckpt;
  RockerReport R = checkRobustness(P, O);
  if (!R.Stats.Resilience.ResumeError.empty())
    ::_exit(90);
  if (!R.Complete)
    ::_exit(91);
  std::ofstream Out(ResultPath);
  Out << (R.Robust ? 1 : 0) << " " << R.Stats.NumStates << " "
      << R.Violations.size() << "\n";
  Out.close();
  ::_exit(Out.good() ? 0 : 92);
}

void expectChildResultMatches(const std::string &ResultPath,
                              const RockerReport &Ref) {
  std::ifstream In(ResultPath);
  int Robust = -1;
  uint64_t NumStates = 0, NumViolations = 0;
  In >> Robust >> NumStates >> NumViolations;
  ASSERT_TRUE(In.good() || In.eof()) << "child result file unreadable";
  EXPECT_EQ(Robust == 1, Ref.Robust);
  EXPECT_EQ(NumStates, Ref.Stats.NumStates);
  EXPECT_EQ(NumViolations, Ref.Violations.size());
}

/// Repeatedly forks a checkpointing child and SIGKILLs it after an
/// escalating delay; whatever checkpoint the kill left behind seeds the
/// next round. The loop ends at the first clean exit (eventually the
/// delay outlives the run), and the final result must match \p Ref.
void killResumeLoop(const Program &P, const RockerReport &Ref,
                    unsigned Threads) {
  ScopedFile Ckpt(tmpPath("kill-" + std::to_string(Threads)));
  ScopedFile Result(tmpPath("kill-result-" + std::to_string(Threads)));
  bool Clean = false;
  for (int Round = 0; Round != 60 && !Clean; ++Round) {
    pid_t Pid = ::fork();
    ASSERT_NE(Pid, -1);
    if (Pid == 0)
      childCheckRun(P, Ckpt.Path, Result.Path, fs::exists(Ckpt.Path),
                    Threads, "");
    ::usleep(200u * (Round + 1) * (Round + 1));
    ::kill(Pid, SIGKILL);
    int St = 0;
    ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
    if (WIFEXITED(St)) {
      ASSERT_EQ(WEXITSTATUS(St), 0) << "child failed in round " << Round;
      Clean = true;
    }
  }
  if (!Clean) { // Deterministic finish: one last round, no kill.
    pid_t Pid = ::fork();
    ASSERT_NE(Pid, -1);
    if (Pid == 0)
      childCheckRun(P, Ckpt.Path, Result.Path, fs::exists(Ckpt.Path),
                    Threads, "");
    int St = 0;
    ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
    ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  }
  expectChildResultMatches(Result.Path, Ref);
}

} // namespace

//===----------------------------------------------------------------------===//
// Checkpoint/resume equivalence
//===----------------------------------------------------------------------===//

TEST(Resilience, TruncateResumeMatchesUninterruptedSequential) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);
  ASSERT_TRUE(Ref.Robust);
  for (uint64_t Cut : {50u, 200u, 500u})
    truncateThenResume(P, Ref, 1, Cut, /*StopOnViolation=*/true);
}

TEST(Resilience, TruncateResumeMatchesUninterruptedParallel4) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(4));
  ASSERT_TRUE(Ref.Complete);
  ASSERT_TRUE(Ref.Robust);
  for (uint64_t Cut : {50u, 200u})
    truncateThenResume(P, Ref, 4, Cut, /*StopOnViolation=*/true);
}

TEST(Resilience, ResumePreservesViolationsAcrossTheCut) {
  // Full sweep of a non-robust program: violations recorded before the
  // cut travel through the checkpoint, ones after the cut are found by
  // the resumed run, and the merged set equals the uninterrupted one.
  Program P = findCorpusEntry("dekker-sc").parse();
  RockerOptions O = baseOpts(1);
  O.StopOnViolation = false;
  RockerReport Ref = checkRobustness(P, O);
  ASSERT_TRUE(Ref.Complete);
  ASSERT_FALSE(Ref.Robust);
  ASSERT_FALSE(Ref.Violations.empty());
  ASSERT_GT(Ref.Stats.NumStates, 40u);
  for (uint64_t Cut :
       {Ref.Stats.NumStates / 4, Ref.Stats.NumStates / 2})
    truncateThenResume(P, Ref, 1, Cut, /*StopOnViolation=*/false);
}

TEST(Resilience, PeriodicCheckpointIsResumable) {
  // A run that completes leaves its last periodic checkpoint behind;
  // resuming from that mid-run snapshot reaches the same result.
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);

  ScopedFile Ckpt(tmpPath("periodic"));
  RockerOptions O = baseOpts(1);
  O.Resilience.CheckpointPath = Ckpt.Path;
  O.Resilience.CheckpointEveryExpansions = 100;
  RockerReport R = checkRobustness(P, O);
  EXPECT_TRUE(R.Complete);
  EXPECT_GE(R.Stats.Resilience.CheckpointsWritten, 4u);
  EXPECT_GT(R.Stats.Resilience.CheckpointBytes, 0u);
  expectSameOutcome(Ref, R, "checkpointing run");
  ASSERT_TRUE(fs::exists(Ckpt.Path));

  RockerOptions Res = baseOpts(1);
  Res.Resilience.ResumePath = Ckpt.Path;
  RockerReport R2 = checkRobustness(P, Res);
  ASSERT_TRUE(R2.Stats.Resilience.ResumeError.empty())
      << R2.Stats.Resilience.ResumeError;
  EXPECT_TRUE(R2.Stats.Resilience.Resumed);
  expectSameOutcome(Ref, R2, "resume from periodic checkpoint");
}

TEST(Resilience, KillResumeLoopSequential) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);
  killResumeLoop(P, Ref, 1);
}

TEST(Resilience, KillResumeLoopParallel4) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(4));
  ASSERT_TRUE(Ref.Complete);
  killResumeLoop(P, Ref, 4);
}

//===----------------------------------------------------------------------===//
// Degradation ladder
//===----------------------------------------------------------------------===//

TEST(Resilience, MemBudgetWalksLadderSequential) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerOptions O = baseOpts(1);
  O.Resilience.MemBudgetBytes = 8 * 1024;
  RockerReport R = checkRobustness(P, O);
  const resilience::ResilienceReport &RR = R.Stats.Resilience;
  ASSERT_GE(RR.Downgrades.size(), 1u);
  for (const resilience::DowngradeEvent &E : RR.Downgrades) {
    EXPECT_LT(static_cast<int>(E.From), static_cast<int>(E.To));
    EXPECT_GT(E.UsedBytes, O.Resilience.MemBudgetBytes);
  }
  EXPECT_EQ(RR.FinalRung, StorageRung::Bitstate);
  EXPECT_TRUE(R.Approximate);
  // No violations were found, but bitstate coverage can never prove
  // Robust: the clean sweep demotes to BoundedRobust.
  EXPECT_TRUE(R.Violations.empty());
  EXPECT_EQ(R.verdictClass(), VerdictClass::BoundedRobust);
}

TEST(Resilience, NotRobustSurvivesDegradation) {
  Program P = findCorpusEntry("lamport2-sc").parse();
  RockerOptions O = baseOpts(1);
  O.StopOnViolation = false;
  O.MaxStates = 20'000;
  O.Resilience.MemBudgetBytes = 8 * 1024;
  RockerReport R = checkRobustness(P, O);
  // Violations are concrete counterexamples, so degraded storage cannot
  // erase a NotRobust verdict.
  EXPECT_FALSE(R.Robust);
  EXPECT_EQ(R.verdictClass(), VerdictClass::NotRobust);
  EXPECT_FALSE(R.Violations.empty());
  EXPECT_FALSE(R.Stats.Resilience.Downgrades.empty());
}

TEST(Resilience, MemBudgetDowngradesParallel) {
  // The parallel engine has no stored payloads to shed, so its ladder
  // goes exact -> bitstate directly. lamport2-ra is big enough that the
  // governor (a 10ms management tick) sees the pressure mid-run.
  Program P = findCorpusEntry("lamport2-ra").parse();
  RockerOptions O = baseOpts(4);
  O.MaxStates = 30'000;
  O.Resilience.MemBudgetBytes = 64 * 1024;
  RockerReport R = checkRobustness(P, O);
  const resilience::ResilienceReport &RR = R.Stats.Resilience;
  ASSERT_GE(RR.Downgrades.size(), 1u);
  EXPECT_EQ(RR.Downgrades[0].From, StorageRung::Exact);
  EXPECT_EQ(RR.Downgrades[0].To, StorageRung::Bitstate);
  EXPECT_EQ(RR.FinalRung, StorageRung::Bitstate);
  EXPECT_TRUE(R.Approximate);
  if (R.Robust) {
    EXPECT_EQ(R.verdictClass(), VerdictClass::BoundedRobust);
  }
}

//===----------------------------------------------------------------------===//
// Resume rejection: stale, corrupt, cross-engine
//===----------------------------------------------------------------------===//

TEST(Resilience, StaleAndCrossEngineResumesAreRejected) {
  ScopedFile Ckpt(tmpPath("stale"));
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerOptions Mid = baseOpts(1);
  Mid.MaxStates = 100;
  Mid.Resilience.CheckpointPath = Ckpt.Path;
  RockerReport M = checkRobustness(P, Mid);
  ASSERT_FALSE(M.Complete);
  ASSERT_TRUE(fs::exists(Ckpt.Path));

  auto ExpectRejected = [&](const Program &RP, const RockerOptions &RO,
                            const std::string &What) {
    RockerReport R = checkRobustness(RP, RO);
    EXPECT_FALSE(R.Stats.Resilience.ResumeError.empty()) << What;
    EXPECT_FALSE(R.Complete) << What;
    EXPECT_EQ(R.Stats.NumStates, 0u) << What;
    EXPECT_TRUE(R.Stats.Resilience.degraded()) << What;
  };

  // A different program is the classic stale checkpoint.
  Program Other = findCorpusEntry("SB").parse();
  RockerOptions RO = baseOpts(1);
  RO.Resilience.ResumePath = Ckpt.Path;
  ExpectRejected(Other, RO, "different program");

  // Same program, semantically different search options.
  RockerOptions Flipped = baseOpts(1);
  Flipped.UsePor = !Flipped.UsePor;
  Flipped.Resilience.ResumePath = Ckpt.Path;
  ExpectRejected(P, Flipped, "flipped POR");

  // A sequential checkpoint cannot seed the parallel engine (and vice
  // versa): the engines' config hashes are deliberately distinct.
  RockerOptions Par = baseOpts(4);
  Par.Resilience.ResumePath = Ckpt.Path;
  ExpectRejected(P, Par, "cross-engine");
}

TEST(Resilience, CorruptCheckpointIsRejected) {
  ScopedFile Ckpt(tmpPath("corrupt"));
  {
    std::ofstream Out(Ckpt.Path, std::ios::binary);
    Out << "RKCPgarbage that is definitely not a valid container";
  }
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerOptions RO = baseOpts(1);
  RO.Resilience.ResumePath = Ckpt.Path;
  RockerReport R = checkRobustness(P, RO);
  EXPECT_FALSE(R.Stats.Resilience.ResumeError.empty());
  EXPECT_FALSE(R.Complete);
}

TEST(Resilience, ContainerRoundTripAndValidation) {
  ScopedFile F(tmpPath("container"));
  std::string Payload = "the payload bytes \0 with a nul";
  std::string Err;
  ASSERT_TRUE(ckpt::writeCheckpointFile(F.Path, 0xABCD, Payload, &Err))
      << Err;
  EXPECT_FALSE(fs::exists(F.Path + ".tmp")); // Renamed, not left behind.

  std::optional<uint64_t> Peeked = ckpt::peekConfigHash(F.Path, &Err);
  ASSERT_TRUE(Peeked.has_value()) << Err;
  EXPECT_EQ(*Peeked, 0xABCDu);

  std::optional<std::string> Back =
      ckpt::loadCheckpointFile(F.Path, 0xABCD, &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(*Back, Payload);

  // Wrong expected hash: stale.
  EXPECT_FALSE(ckpt::loadCheckpointFile(F.Path, 0x1234, &Err).has_value());
  EXPECT_NE(Err.find("stale"), std::string::npos) << Err;

  // Flip a payload byte: checksum failure.
  {
    std::fstream Fix(F.Path,
                     std::ios::in | std::ios::out | std::ios::binary);
    Fix.seekp(-1, std::ios::end);
    Fix.put('!');
  }
  EXPECT_FALSE(ckpt::loadCheckpointFile(F.Path, 0xABCD, &Err).has_value());
}

//===----------------------------------------------------------------------===//
// Stop requests and verdict classes
//===----------------------------------------------------------------------===//

TEST(Resilience, StopRequestDrainsAndLeavesFinalCheckpoint) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));

  ScopedFile Ckpt(tmpPath("stop"));
  RockerOptions O = baseOpts(1);
  O.Resilience.CheckpointPath = Ckpt.Path;
  O.Resilience.CheckpointEveryExpansions = 50;
  resilience::requestStop();
  RockerReport R = checkRobustness(P, O);
  resilience::clearStopRequest();
  EXPECT_TRUE(R.Stats.Resilience.Interrupted);
  EXPECT_FALSE(R.Complete);
  if (R.Robust) {
    EXPECT_EQ(R.verdictClass(), VerdictClass::BoundedRobust);
  }
  ASSERT_TRUE(fs::exists(Ckpt.Path));

  RockerOptions Res = baseOpts(1);
  Res.Resilience.ResumePath = Ckpt.Path;
  RockerReport R2 = checkRobustness(P, Res);
  ASSERT_TRUE(R2.Stats.Resilience.ResumeError.empty())
      << R2.Stats.Resilience.ResumeError;
  expectSameOutcome(Ref, R2, "resume after stop request");
}

TEST(Resilience, VerdictClassContract) {
  Program Robust = findCorpusEntry("peterson-ra").parse();
  EXPECT_EQ(checkRobustness(Robust, baseOpts(1)).verdictClass(),
            VerdictClass::Robust);

  Program NotRobust = findCorpusEntry("SB").parse();
  EXPECT_EQ(checkRobustness(NotRobust, baseOpts(1)).verdictClass(),
            VerdictClass::NotRobust);

  RockerOptions Cut = baseOpts(1);
  Cut.MaxStates = 50;
  RockerReport Truncated = checkRobustness(Robust, Cut);
  ASSERT_FALSE(Truncated.Complete);
  EXPECT_EQ(Truncated.verdictClass(), VerdictClass::BoundedRobust);

  EXPECT_STREQ(verdictClassName(VerdictClass::Robust), "robust");
  EXPECT_STREQ(verdictClassName(VerdictClass::NotRobust), "not-robust");
  EXPECT_STREQ(verdictClassName(VerdictClass::BoundedRobust),
               "bounded-robust");
}

TEST(Resilience, AtomicWriteFileRoundTrip) {
  ScopedFile F(tmpPath("atomic-write"));
  std::string Err;
  ASSERT_TRUE(ckpt::atomicWriteFile(F.Path, "hello\n", &Err)) << Err;
  {
    std::ifstream In(F.Path);
    std::string Data(std::istreambuf_iterator<char>(In), {});
    EXPECT_EQ(Data, "hello\n");
  }
  // Overwrites go through the same tmp+rename path: no partial state.
  ASSERT_TRUE(ckpt::atomicWriteFile(F.Path, "second", &Err)) << Err;
  std::ifstream In(F.Path);
  std::string Data(std::istreambuf_iterator<char>(In), {});
  EXPECT_EQ(Data, "second");
  EXPECT_FALSE(fs::exists(F.Path + ".tmp"));
}

TEST(Resilience, BitstateLog2ForBudgetClampsAndScales) {
  unsigned Tiny = resilience::bitstateLog2ForBudget(1);
  unsigned Mid = resilience::bitstateLog2ForBudget(64ull << 20);
  unsigned Huge = resilience::bitstateLog2ForBudget(1ull << 60);
  EXPECT_GE(Tiny, 16u);
  EXPECT_LE(Huge, 33u);
  EXPECT_LE(Tiny, Mid);
  EXPECT_LE(Mid, Huge);
}

//===----------------------------------------------------------------------===//
// Fault-injected scenarios (ROCKER_FAULT_INJECT builds only)
//===----------------------------------------------------------------------===//

#ifdef ROCKER_FAULT_INJECT

namespace {

/// Forks a child with \p FiSpec; the configured kill must terminate it
/// with SIGKILL, then a fault-free resume must match \p Ref. The child
/// records a flight-recorder trace, so the fault-injection pre-kill hook
/// must leave a readable last-events dump next to the checkpoint.
void fiKillThenResume(const Program &P, const RockerReport &Ref,
                      const char *FiSpec, const std::string &Stem) {
  ScopedFile Ckpt(tmpPath(Stem));
  ScopedFile Result(tmpPath(Stem + "-result"));
  ScopedFile Trace(Ckpt.Path + ".trace.json");
  ScopedFile Dump(Ckpt.Path + ".trace.txt");

  pid_t Pid = ::fork();
  ASSERT_NE(Pid, -1);
  if (Pid == 0) {
    obs::traceConfigure(Trace.Path);
    childCheckRun(P, Ckpt.Path, Result.Path, false, 1, FiSpec);
  }
  int St = 0;
  ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(St)) << "child was not killed (" << FiSpec << ")";
  ASSERT_EQ(WTERMSIG(St), SIGKILL);
  ASSERT_TRUE(fs::exists(Ckpt.Path))
      << "no checkpoint survived the kill (" << FiSpec << ")";
  if (obs::traceSupported()) {
    // The engine redirects the dump next to its checkpoint, and the
    // pre-kill hook fires before SIGKILL: the dump must name the kill
    // and carry at least one recorded event line.
    ASSERT_TRUE(fs::exists(Dump.Path))
        << "kill left no flight-recorder dump (" << FiSpec << ")";
    std::ifstream DumpIn(Dump.Path);
    std::stringstream DumpBuf;
    DumpBuf << DumpIn.rdbuf();
    EXPECT_NE(DumpBuf.str().find("fault-injection kill"),
              std::string::npos)
        << FiSpec;
    EXPECT_NE(DumpBuf.str().find("begin "), std::string::npos)
        << FiSpec << ": dump carries no span events";
  }

  pid_t Pid2 = ::fork();
  ASSERT_NE(Pid2, -1);
  if (Pid2 == 0)
    childCheckRun(P, Ckpt.Path, Result.Path, true, 1, "");
  ASSERT_EQ(::waitpid(Pid2, &St, 0), Pid2);
  ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0)
      << "resume round failed (" << FiSpec << ")";
  expectChildResultMatches(Result.Path, Ref);
}

} // namespace

TEST(ResilienceFi, KillAtDeterministicExpansionThenResume) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);
  fiKillThenResume(P, Ref, "kill:explore.expand@40", "fi-kill-40");
  fiKillThenResume(P, Ref, "kill:explore.expand@333", "fi-kill-333");
}

TEST(ResilienceFi, MidWriteKillLeavesPreviousCheckpointIntact) {
  // Dies between the second checkpoint's payload write and its atomic
  // rename; the first checkpoint must still be complete and resumable.
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);
  fiKillThenResume(P, Ref, "kill:ckpt.midwrite@2", "fi-midwrite");
}

TEST(ResilienceFi, ForcedGovernorFaultDropsExactlyOneRung) {
  // A forced allocation-pressure event with an otherwise-unreachable
  // budget: the ladder steps to no-payload and stays there. No-payload
  // coverage is still exact, so a completed clean sweep remains Robust.
  fi::configure("fail:govern.alloc@1");
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  RockerOptions O = baseOpts(1);
  O.Resilience.MemBudgetBytes = 1ull << 40;
  RockerReport R = checkRobustness(P, O);
  fi::configure("");
  const resilience::ResilienceReport &RR = R.Stats.Resilience;
  ASSERT_EQ(RR.Downgrades.size(), 1u);
  EXPECT_EQ(RR.Downgrades[0].From, StorageRung::Exact);
  EXPECT_EQ(RR.Downgrades[0].To, StorageRung::NoPayload);
  EXPECT_EQ(RR.FinalRung, StorageRung::NoPayload);
  EXPECT_TRUE(R.Complete);
  EXPECT_EQ(R.Stats.NumStates, Ref.Stats.NumStates);
  EXPECT_EQ(R.verdictClass(), VerdictClass::Robust);
}

TEST(ResilienceFi, ClockSkewTripsDeadline) {
  fi::configure("skew:100000");
  Program P = findCorpusEntry("lamport2-ra").parse();
  RockerOptions O = baseOpts(1);
  O.MaxStates = 50'000;
  O.Resilience.DeadlineSeconds = 3000;
  RockerReport R = checkRobustness(P, O);
  fi::configure("");
  EXPECT_TRUE(R.Stats.Resilience.DeadlineHit);
  EXPECT_FALSE(R.Complete);
  if (R.Robust) {
    EXPECT_EQ(R.verdictClass(), VerdictClass::BoundedRobust);
  }
}

TEST(ResilienceFi, WatchdogCatchesStuckWorker) {
  // Traced run: the watchdog trip must also leave a readable
  // last-events dump (default location: next to the trace file).
  ScopedFile Trace(tmpPath("fi-watchdog-trace"));
  ScopedFile Dump(Trace.Path + ".crash.txt");
  bool Tracing =
      obs::traceSupported() && obs::traceConfigure(Trace.Path);

  fi::configure("stall:worker.stall@50");
  Program P = findCorpusEntry("lamport2-ra").parse();
  SCMemory Mem(P);
  ParExploreOptions PO;
  PO.Threads = 1;
  PO.MaxStates = 200'000;
  PO.Resilience.WatchdogSeconds = 0.25;
  ParallelExplorer<SCMemory> Ex(P, Mem, PO);
  ParExploreResult R = Ex.run();
  fi::configure("");
  EXPECT_TRUE(R.Stats.Resilience.WatchdogFired);
  EXPECT_TRUE(R.Stats.Truncated);
  EXPECT_EQ(R.Verdict, ParVerdict::Bounded);
  if (Tracing) {
    obs::traceStop();
    ASSERT_TRUE(fs::exists(Dump.Path))
        << "watchdog trip left no flight-recorder dump";
    std::ifstream DumpIn(Dump.Path);
    std::stringstream DumpBuf;
    DumpBuf << DumpIn.rdbuf();
    EXPECT_NE(DumpBuf.str().find("watchdog"), std::string::npos);
  }
}

TEST(ResilienceFi, CheckpointWriteFailureIsSkippedNotFatal) {
  fi::configure("fail:ckpt.write@1");
  ScopedFile Ckpt(tmpPath("fi-write-fail"));
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerOptions O = baseOpts(1);
  O.Resilience.CheckpointPath = Ckpt.Path;
  O.Resilience.CheckpointEveryExpansions = 100;
  RockerReport R = checkRobustness(P, O);
  fi::configure("");
  // The first write fails, later ones succeed, and the run itself is
  // untouched either way.
  EXPECT_TRUE(R.Complete);
  EXPECT_EQ(R.verdictClass(), VerdictClass::Robust);
  EXPECT_GE(R.Stats.Resilience.CheckpointsWritten, 1u);
  EXPECT_TRUE(fs::exists(Ckpt.Path));
}

TEST(ResilienceFi, DirectoryFsyncFailureFailsTheWrite) {
  // The parent-directory fsync added after the rename is part of the
  // durability contract: its failure must surface as a failed write,
  // not be swallowed.
  ScopedFile F(tmpPath("fi-dirsync"));
  std::string Err;
  ASSERT_TRUE(ckpt::atomicWriteFile(F.Path, "payload", &Err)) << Err;
  fi::configure("fail:ckpt.dirsync@1");
  EXPECT_FALSE(ckpt::atomicWriteFile(F.Path, "payload2", &Err));
  fi::configure("");
  EXPECT_NE(Err.find("fsync"), std::string::npos) << Err;
}

TEST(ResilienceFi, PostRenameKillLeavesDurableCheckpoint) {
  // Dies between the first checkpoint's rename and the parent-directory
  // fsync: the renamed file is complete and checksummed, so it must
  // still load and resume to the exact reference outcome.
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport Ref = checkRobustness(P, baseOpts(1));
  ASSERT_TRUE(Ref.Complete);
  fiKillThenResume(P, Ref, "kill:ckpt.postrename@1", "fi-postrename");
}

#endif // ROCKER_FAULT_INJECT
