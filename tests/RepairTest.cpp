//===- tests/RepairTest.cpp - Robustness enforcement tests ------------------===//

#include "repair/FenceInsertion.h"

#include "lang/Printer.h"
#include "litmus/Corpus.h"

#include <gtest/gtest.h>

using namespace rocker;

TEST(ApplyRepairs, InsertsFencesAndRetargetsBranches) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x y
thread t0
  x := 1
loop:
  a := y
  if a == 0 goto loop
)");
  std::vector<Repair> Rs = {{Repair::Kind::FenceAfter, 0, 0}};
  Program S = applyRepairs(P, Rs);
  ASSERT_EQ(S.Threads[0].Insts.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<FaddInst>(S.Threads[0].Insts[1]));
  // The loop target (originally 1) must now point at the shifted load.
  EXPECT_EQ(std::get<IfGotoInst>(S.Threads[0].Insts[3]).Target, 2u);
  EXPECT_TRUE(S.validate().empty());
}

TEST(ApplyRepairs, StoreToXchg) {
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread t0\n  x := 1\n");
  std::vector<Repair> Rs = {{Repair::Kind::StoreToXchg, 0, 0}};
  Program S = applyRepairs(P, Rs);
  ASSERT_TRUE(std::holds_alternative<XchgInst>(S.Threads[0].Insts[0]));
  EXPECT_TRUE(S.validate().empty());
}

TEST(Enforce, SBGetsOneFencePerThread) {
  Program P = findCorpusEntry("SB").parse();
  RepairResult R = enforceRobustness(P);
  ASSERT_TRUE(R.Success) << R.Detail;
  // The canonical SB repair: a fence between each thread's store and
  // load (Example 3.6) — exactly two repairs.
  EXPECT_EQ(R.Repairs.size(), 2u);
  for (const Repair &Rep : R.Repairs) {
    EXPECT_EQ(Rep.K, Repair::Kind::FenceAfter);
    EXPECT_EQ(Rep.Pc, 0u); // After the store.
  }
  // The strengthened program must verify robust.
  EXPECT_TRUE(checkRobustness(R.Strengthened).Robust);
}

TEST(Enforce, AlreadyRobustProgramNeedsNothing) {
  Program P = findCorpusEntry("MP").parse();
  RepairResult R = enforceRobustness(P);
  ASSERT_TRUE(R.Success);
  EXPECT_TRUE(R.Repairs.empty());
}

TEST(Enforce, PetersonScIsRepairable) {
  Program P = findCorpusEntry("peterson-sc").parse();
  RepairOptions O;
  RepairResult R = enforceRobustness(P, O);
  ASSERT_TRUE(R.Success) << R.Detail;
  EXPECT_FALSE(R.Repairs.empty());
  // Every kept repair is necessary (local minimality).
  for (unsigned I = 0; I != R.Repairs.size(); ++I) {
    std::vector<Repair> Without = R.Repairs;
    Without.erase(Without.begin() + I);
    RockerOptions VO;
    VO.CheckAssertions = false;
    VO.CheckRaces = false;
    EXPECT_FALSE(checkRobustness(applyRepairs(P, Without), VO).Robust)
        << "redundant repair kept: " << toString(P, R.Repairs[I]);
  }
  // The repaired Peterson still satisfies its mutual-exclusion asserts.
  EXPECT_TRUE(exploreSC(R.Strengthened).Robust);
}

TEST(Enforce, RmwStrengtheningFindsDmitriyStyleRepair) {
  // With RMW strengthening allowed, Peterson can also be repaired; the
  // result must verify and stay assert-clean.
  Program P = findCorpusEntry("peterson-sc").parse();
  RepairOptions O;
  O.AllowRmwStrengthening = true;
  RepairResult R = enforceRobustness(P, O);
  ASSERT_TRUE(R.Success) << R.Detail;
  EXPECT_TRUE(exploreSC(R.Strengthened).Robust);
}

TEST(Enforce, IriwNeedsFencesInReaders) {
  Program P = findCorpusEntry("IRIW").parse();
  RepairResult R = enforceRobustness(P);
  ASSERT_TRUE(R.Success) << R.Detail;
  // The writers have a single store each; the repairs must land between
  // the readers' two loads (the only place a fence helps IRIW).
  for (const Repair &Rep : R.Repairs) {
    EXPECT_TRUE(Rep.Thread == 1 || Rep.Thread == 2)
        << toString(P, Rep);
    EXPECT_EQ(Rep.Pc, 0u) << toString(P, Rep);
  }
  EXPECT_EQ(R.Repairs.size(), 2u);
}

TEST(Enforce, SpinLoopBarrierIsFenceRepairable) {
  // Corollary 5.4's lower-bound proof notes that fencing between every
  // two instructions makes any program robust; in particular the
  // spin-loop barrier is repairable (fences inside the loop mask the
  // benign stale reads), it just needs more fences than the blocking
  // variant needs (zero).
  Program P = findCorpusEntry("barrier-loop").parse();
  RepairResult R = enforceRobustness(P);
  ASSERT_TRUE(R.Success) << R.Detail;
  EXPECT_FALSE(R.Repairs.empty());
  EXPECT_TRUE(checkRobustness(R.Strengthened).Robust);
}

TEST(Enforce, BudgetExhaustionFailsGracefully) {
  Program P = findCorpusEntry("SB").parse();
  RepairOptions O;
  O.MaxVerifications = 1; // Enough to see it is non-robust, not to fix.
  RepairResult R = enforceRobustness(P, O);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.Detail.empty());
}
