//===- tests/ExplorerTest.cpp - Product explorer unit tests -----------------===//

#include "explore/Explorer.h"
#include "lang/Parser.h"
#include "memory/SCMemory.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

ExploreOptions quiet() {
  ExploreOptions O;
  O.RecordParents = false;
  // These tests assert exact full-graph counts; POR would shrink them
  // (its verdict/count preservation is covered by tests/PorTest.cpp).
  O.UsePor = false;
  return O;
}

} // namespace

TEST(Explorer, CountsStatesOfStraightLineProgram) {
  // One thread, three instructions: initial + 3 successors = 4 states.
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread t\n  x := 1\n  a := x\n  x := 0\n");
  SCMemory M(P);
  ProductExplorer<SCMemory> Ex(P, M, quiet());
  ExploreResult R = Ex.run();
  EXPECT_EQ(R.Stats.NumStates, 4u);
  EXPECT_EQ(R.Stats.NumTransitions, 3u);
  EXPECT_FALSE(R.Stats.Truncated);
}

TEST(Explorer, InterleavingsShareStates) {
  // Two independent one-write threads: the diamond has exactly 4 states
  // under SC... but memory contents differ per order, giving 2x2 pc
  // combinations with identical memory at the end: 4 pc-states, memory
  // x=1 always after t0, y=1 after t1: total distinct product states = 4.
  Program P = parseProgramOrDie(
      "vals 2\nlocs x y\nthread a\n  x := 1\nthread b\n  y := 1\n");
  SCMemory M(P);
  ProductExplorer<SCMemory> Ex(P, M, quiet());
  ExploreResult R = Ex.run();
  EXPECT_EQ(R.Stats.NumStates, 4u);
  EXPECT_EQ(R.Stats.NumTransitions, 4u);
}

TEST(Explorer, DeadlockedWaitsJustStopExpanding) {
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread t\n  wait(x == 1)\n  x := 1\n");
  SCMemory M(P);
  ProductExplorer<SCMemory> Ex(P, M, quiet());
  ExploreResult R = Ex.run();
  EXPECT_EQ(R.Stats.NumStates, 1u); // Nothing is ever enabled.
  EXPECT_FALSE(R.hasViolation());
}

TEST(Explorer, MaxStatesTruncates) {
  Program P = parseProgramOrDie(R"(
vals 4
locs x
thread t
l:
  r := FADD(x, 1)
  if 1 goto l
)");
  SCMemory M(P);
  ExploreOptions O = quiet();
  O.MaxStates = 3;
  ProductExplorer<SCMemory> Ex(P, M, O);
  ExploreResult R = Ex.run();
  EXPECT_TRUE(R.Stats.Truncated);
  EXPECT_LE(R.Stats.NumStates, 4u);
}

TEST(Explorer, CollectsProgramStateProjections) {
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread a\n  x := 1\nthread b\n  r := x\n");
  SCMemory M(P);
  ExploreOptions O = quiet();
  O.CollectProgramStates = true;
  ProductExplorer<SCMemory> Ex(P, M, O);
  ExploreResult R = Ex.run();
  // pc states: (0,0),(1,0),(0,1 r=0),(1,1 r=0),(1,1 r=1) = 5.
  EXPECT_EQ(R.ProgramStates.size(), 5u);
}

TEST(Explorer, HookViolationCarriesStateAndThread) {
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread a\n  x := 1\n  r := x\n");
  SCMemory M(P);
  ExploreOptions O = quiet();
  O.RecordParents = true;
  ProductExplorer<SCMemory> Ex(P, M, O);
  ExploreResult R = Ex.runWithHook(
      [&](const SCMemory::State &S, ThreadId T, uint32_t Pc,
          const MemAccess &A) -> std::optional<Violation> {
        if (A.K != MemAccess::Kind::Read || S[A.Loc] != 1)
          return std::nullopt;
        Violation V;
        V.K = Violation::Kind::Robustness;
        V.Loc = A.Loc;
        return V;
      });
  ASSERT_TRUE(R.hasViolation());
  const Violation &V = R.Violations.front();
  EXPECT_EQ(V.Thread, 0);
  EXPECT_EQ(V.Pc, 1u);
  std::vector<TraceStep> Trace = Ex.trace(V);
  ASSERT_EQ(Trace.size(), 1u); // One step: the store.
  EXPECT_EQ(Trace[0].Text, "W(x,1)");
}

TEST(Explorer, StopOnViolationVsCollectAll) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread a
  assert(0)
thread b
  assert(0)
)");
  SCMemory M(P);
  ExploreOptions O = quiet();
  O.StopOnViolation = false;
  ProductExplorer<SCMemory> Ex(P, M, O);
  ExploreResult R = Ex.run();
  EXPECT_EQ(R.Violations.size(), 2u);

  O.StopOnViolation = true;
  ProductExplorer<SCMemory> Ex2(P, M, O);
  ExploreResult R2 = Ex2.run();
  EXPECT_EQ(R2.Violations.size(), 1u);
}
