# Malformed-flag rejection across the CLI surface. Every invocation
# below used to be silently misparsed (strtoull stops at the first
# non-digit, so "--threads=2x" ran with 2 threads and "abc" became 0);
# the checked parsers now reject them with the usage exit code 3.
#
# Run via: cmake -DROCKER_CLI=... -DROCKER_BATCH=... -DFIG7=...
#               -P CliFlagsTest.cmake

function(expect_usage)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 3)
    message(FATAL_ERROR
            "expected exit 3 from '${ARGV}', got '${RC}'\n${ERR}")
  endif()
endfunction()

# rocker_cli: numeric flags, both spellings, and the env knob.
expect_usage(${ROCKER_CLI} --threads=2x SB)
expect_usage(${ROCKER_CLI} --threads -4 SB)
expect_usage(${ROCKER_CLI} --max-states 10q SB)
expect_usage(${ROCKER_CLI} --max-seconds abc SB)
expect_usage(${ROCKER_CLI} --bitstate 2.5 SB)
expect_usage(${ROCKER_CLI} --mem-budget 1MB SB)
expect_usage(${ROCKER_CLI} --deadline=1.5s SB)
expect_usage(${ROCKER_CLI} --watchdog " 5" SB)
expect_usage(${ROCKER_CLI} --samples 12x SB)
expect_usage(${ROCKER_CLI} --sample-seed 0x10 SB)
expect_usage(${ROCKER_CLI} --progress=abc SB)
expect_usage(${ROCKER_CLI} --jobs 2x --batch nothing.json)
expect_usage(${CMAKE_COMMAND} -E env ROCKER_PROGRESS=abc ${ROCKER_CLI} SB)

# fig7_table: the sampling knobs.
expect_usage(${FIG7} --samples 12x)
expect_usage(${FIG7} --sample-seed abc)

# rocker_batch: numeric defaults and the corpus/manifest contract.
expect_usage(${ROCKER_BATCH} --corpus --jobs 2x)
expect_usage(${ROCKER_BATCH} --corpus --max-states 1e9)
expect_usage(${ROCKER_BATCH} --corpus --mem-budget 12Q)
expect_usage(${ROCKER_BATCH} --corpus --deadline abc)
expect_usage(${ROCKER_BATCH})

message(STATUS "all malformed-flag invocations rejected with exit 3")
