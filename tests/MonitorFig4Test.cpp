//===- tests/MonitorFig4Test.cpp - Figure 4 golden monitor runs -------------===//
//
// Figure 4 of the paper lists the exact SCM states along an SCG run of MP
// and of SB. These tests replay those runs through the incremental
// monitor and compare every component against the figure.
//
//===----------------------------------------------------------------------===//

#include "monitor/SCMState.h"

#include "lang/Program.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

/// Two threads, two RA locations x=0, y=1, Val={0,1}; instruction bodies
/// are irrelevant (the monitor is driven directly).
Program twoLocProgram() {
  ProgramBuilder B("fig4", 2);
  LocId X = B.addLoc("x");
  B.beginThread("t1");
  B.load(B.reg("a"), X);
  B.beginThread("t2");
  B.load(B.reg("b"), X);
  Program P = B.build();
  P.LocNames.push_back("y");
  return P;
}

constexpr LocId X = 0, Y = 1;
constexpr ThreadId T1 = 0, T2 = 1;

BitSet64 locs(std::initializer_list<unsigned> Es) {
  BitSet64 S;
  for (unsigned E : Es)
    S.insert(E);
  return S;
}

} // namespace

TEST(MonitorFig4, MessagePassingRun) {
  Program P = twoLocProgram();
  SCMonitor Mon(P, /*Abstract=*/false);
  SCMState S = Mon.initial();

  // Initial state.
  EXPECT_EQ(S.VSC[T1], locs({X, Y}));
  EXPECT_EQ(S.VSC[T2], locs({X, Y}));
  EXPECT_EQ(S.MSC[X], locs({X}));
  EXPECT_EQ(S.WSC[Y], locs({Y}));

  // ⟨1, W(x,1)⟩.
  Mon.stepWrite(S, T1, X, 1, /*IsNA=*/false);
  EXPECT_EQ(S.M[X], 1);
  EXPECT_EQ(S.VSC[T1], locs({X, Y}));
  EXPECT_EQ(S.VSC[T2], locs({Y}));
  EXPECT_EQ(S.WSC[X], locs({X, Y}));
  EXPECT_EQ(S.WSC[Y], locs({Y}));
  EXPECT_EQ(S.MSC[X], locs({X, Y}));
  EXPECT_EQ(S.MSC[Y], locs({Y}));
  EXPECT_TRUE(S.V[T1 * 2 + X].empty());
  EXPECT_EQ(S.V[T2 * 2 + X], BitSet64::fromMask(1)); // {0}
  EXPECT_TRUE(S.W[X * 2 + Y].empty());               // W(x)(y) = ∅
  EXPECT_EQ(S.W[Y * 2 + X], BitSet64::fromMask(1));  // W(y)(x) = {0}

  // ⟨1, W(y,1)⟩.
  Mon.stepWrite(S, T1, Y, 1, /*IsNA=*/false);
  EXPECT_EQ(S.VSC[T1], locs({X, Y}));
  EXPECT_TRUE(S.VSC[T2].empty());
  EXPECT_EQ(S.WSC[X], locs({X}));
  EXPECT_EQ(S.WSC[Y], locs({X, Y}));
  EXPECT_EQ(S.MSC[X], locs({X}));
  EXPECT_EQ(S.MSC[Y], locs({X, Y}));
  EXPECT_EQ(S.V[T2 * 2 + X], BitSet64::fromMask(1)); // {0}
  EXPECT_EQ(S.V[T2 * 2 + Y], BitSet64::fromMask(1)); // {0}
  EXPECT_EQ(S.W[X * 2 + Y], BitSet64::fromMask(1));  // W(x)(y) = {0}
  EXPECT_TRUE(S.W[Y * 2 + X].empty());               // W(y)(x) = ∅

  // ⟨2, R(y,1)⟩ — reading y's maximal write synchronizes t2.
  Mon.stepRead(S, T2, Y, /*IsNA=*/false);
  EXPECT_EQ(S.VSC[T2], locs({X, Y}));
  EXPECT_EQ(S.MSC[Y], locs({X, Y}));
  EXPECT_TRUE(S.V[T2 * 2 + X].empty()); // V(2) emptied by the read.
  EXPECT_TRUE(S.V[T2 * 2 + Y].empty());

  // ⟨2, R(x,1)⟩ — no violation anywhere: MP is robust.
  MemAccess A{};
  A.K = MemAccess::Kind::Read;
  A.Loc = X;
  A.IsNA = false;
  EXPECT_FALSE(Mon.checkAccess(S, T2, A).has_value());
  Mon.stepRead(S, T2, X, /*IsNA=*/false);
  EXPECT_EQ(S.MSC[X], locs({X, Y}));
  EXPECT_EQ(S.W[X * 2 + Y], BitSet64::fromMask(1));
}

TEST(MonitorFig4, StoreBufferingRun) {
  Program P = twoLocProgram();
  SCMonitor Mon(P, /*Abstract=*/false);
  SCMState S = Mon.initial();

  // ⟨1, W(x,1)⟩ then ⟨1, R(y,0)⟩.
  Mon.stepWrite(S, T1, X, 1, /*IsNA=*/false);
  Mon.stepRead(S, T1, Y, /*IsNA=*/false);
  EXPECT_EQ(S.VSC[T1], locs({X, Y}));
  EXPECT_EQ(S.VSC[T2], locs({Y}));
  EXPECT_EQ(S.MSC[Y], locs({X, Y})); // t1's read of y is hbSC-after wmax_x.
  EXPECT_EQ(S.V[T2 * 2 + X], BitSet64::fromMask(1));

  // ⟨2, W(y,1)⟩ — t2 writes y; the fr edge from t1's read makes t1's
  // whole history hbSC-before wmax_y.
  Mon.stepWrite(S, T2, Y, 1, /*IsNA=*/false);
  EXPECT_EQ(S.VSC[T1], locs({X}));
  EXPECT_EQ(S.VSC[T2], locs({X, Y}));
  EXPECT_EQ(S.V[T1 * 2 + Y], BitSet64::fromMask(1)); // V(1)(y) = {0}
  EXPECT_EQ(S.V[T2 * 2 + X], BitSet64::fromMask(1)); // V(2)(x) = {0}
  EXPECT_EQ(S.W[X * 2 + Y], BitSet64::fromMask(1));
  EXPECT_EQ(S.W[Y * 2 + X], BitSet64::fromMask(1));

  // ⟨2, R(x,0)⟩ would be a robustness violation: x ∈ VSC(2), 0 ∈ V(2)(x).
  MemAccess A{};
  A.K = MemAccess::Kind::Read;
  A.Loc = X;
  A.IsNA = false;
  std::optional<MonitorViolation> V = Mon.checkAccess(S, T2, A);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Loc, X);
  EXPECT_EQ(V->WitnessVal, 0);
  EXPECT_EQ(V->Type, AccessType::R);
}
