//===- tests/VisitedSetTest.cpp - Visited-set compression + key fixes -------===//
//
// Covers the compressed visited set (support/StateInterner.h) and the
// state-key correctness fixes that came with it:
//
//  * pc-width regression: state keys used to serialize only the low 16
//    bits of the 32-bit pc, aliasing distinct states in programs with
//    more than 2^16 instructions per thread — now varint-encoded
//    (support/StateKey.h) in both engines and both visited-set modes.
//  * bitstate memory release: expanded states' payloads are freed, so the
//    documented "memory drops to the bit array" behavior actually holds.
//  * interner round-trip identity: with compression on, verdicts, state/
//    transition/dedup counts, and violation reports are byte-identical to
//    the raw visited set, corpus-wide, at 1 and 4 threads.
//  * unit tests of StateInterner / ShardedStateInterner themselves.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "memory/SCMemory.h"
#include "parexplore/ParallelExplorer.h"
#include "rocker/RobustnessChecker.h"
#include "support/StateInterner.h"
#include "support/StateKey.h"
#include "tso/TSORobustness.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace rocker;

namespace {

constexpr uint64_t Budget = 60'000;

std::vector<std::pair<std::string, Program>> loadCorpusDir() {
  std::vector<std::pair<std::string, Program>> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ROCKER_PROGRAMS_DIR)) {
    if (Entry.path().extension() != ".rkr")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buf;
    Buf << In.rdbuf();
    ParseResult R = parseProgram(Buf.str());
    if (!R.ok())
      ADD_FAILURE() << "cannot parse " << Entry.path();
    else
      Out.emplace_back(Entry.path().filename().string(),
                       std::move(*R.Prog));
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  EXPECT_GT(Out.size(), 40u) << "corpus went missing?";
  return Out;
}

/// A single-thread straight-line program with > 2^16 instructions: its pc
/// walks through values whose low 16 bits repeat, so a 16-bit-truncated
/// key aliases distinct states.
Program longStraightLineProgram(unsigned NumInsts) {
  ProgramBuilder B("pc-width");
  B.addLoc("x");
  B.beginThread("t0");
  RegId R = B.reg("r");
  for (unsigned I = 0; I != NumInsts; ++I)
    B.assign(R, Expr::makeConst(1));
  return B.build();
}

} // namespace

//===----------------------------------------------------------------------===//
// pc-width regression (satellite bugfix)
//===----------------------------------------------------------------------===//

TEST(StateKey, VarintPcKeysDifferAboveBit16) {
  ThreadState A;
  A.Pc = 5;
  A.Regs.assign(2, 7);
  ThreadState B = A;
  B.Pc = 5 + 65536; // Identical low 16 bits.
  EXPECT_NE(programStateKey({A}), programStateKey({B}));
  // And the varint stays compact where the old fixed encoding was not.
  std::string Small;
  appendVarUint32(Small, 5);
  EXPECT_EQ(Small.size(), 1u);
}

TEST(StateKey, VarintRoundsTripBoundaryValues) {
  // Distinct pcs must produce distinct varints (injectivity at the
  // 1/2/3-byte boundaries).
  std::vector<uint32_t> Pcs = {0,     1,      127,    128,     16383,
                               16384, 65535,  65536,  65537,   2097151,
                               2097152, 0xffffffffu};
  std::vector<std::string> Keys;
  for (uint32_t Pc : Pcs) {
    std::string K;
    appendVarUint32(K, Pc);
    Keys.push_back(K);
  }
  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_NE(Keys[I], Keys[J]) << Pcs[I] << " vs " << Pcs[J];
}

TEST(PcWidth, StatesAboveBit16DoNotAliasSequential) {
  // 65600 instructions → 65601 distinct states (one per pc). Under the
  // old 16-bit truncation, pc 65537 aliased pc 1 (same registers), so the
  // exploration stopped short.
  const unsigned N = 65600;
  Program P = longStraightLineProgram(N);
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.CompressVisited = Compress;
    EO.UsePor = false; // POR would chain-compress the straight line away.
    ProductExplorer<SCMemory> Ex(P, Mem, EO);
    ExploreResult R = Ex.run();
    EXPECT_EQ(R.Stats.NumStates, N + 1)
        << (Compress ? "compressed" : "raw");
  }
}

TEST(PcWidth, StatesAboveBit16DoNotAliasParallel) {
  const unsigned N = 65600;
  Program P = longStraightLineProgram(N);
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ParExploreOptions PO;
    PO.Threads = 2;
    PO.RecordTrace = false;
    PO.CompressVisited = Compress;
    PO.UsePor = false; // POR would chain-compress the straight line away.
    ParallelExplorer<SCMemory> Ex(P, Mem, PO);
    ParExploreResult R = Ex.run();
    EXPECT_EQ(R.Stats.NumStates, N + 1)
        << (Compress ? "compressed" : "raw");
  }
}

//===----------------------------------------------------------------------===//
// Bitstate memory release (satellite bugfix)
//===----------------------------------------------------------------------===//

TEST(Bitstate, ReleasesExpandedStatePayloads) {
  Program P = findCorpusEntry("peterson-ra").parse();
  SCMemory Mem(P);
  ExploreOptions EO;
  EO.BitstateLog2 = 20;
  EO.RecordParents = false;
  EO.UsePor = false; // Keep the full state count the release sweep expects.
  ProductExplorer<SCMemory> Ex(P, Mem, EO);
  ExploreResult R = Ex.run();
  ASSERT_GT(R.Stats.NumStates, 100u);
  // Every expanded state's payload was replaced by an empty ProductState;
  // with BFS and no violation, that is every state.
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id)
    EXPECT_TRUE(Ex.state(Id).Threads.empty()) << "state " << Id;
}

TEST(Bitstate, StillStoresPayloadsInExactModes) {
  // The release is bitstate-only: exact runs keep payloads, which the
  // graph oracle's post-run SC-consistency sweep relies on.
  Program P = findCorpusEntry("SB").parse();
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.CompressVisited = Compress;
    ProductExplorer<SCMemory> Ex(P, Mem, EO);
    Ex.run();
    for (uint64_t Id = 0; Id != Ex.numStates(); ++Id)
      EXPECT_FALSE(Ex.state(Id).Threads.empty());
  }
}

//===----------------------------------------------------------------------===//
// Interner unit tests
//===----------------------------------------------------------------------===//

TEST(StateInterner, ComponentIdsAreDensePerSlot) {
  StateInterner In(2);
  EXPECT_EQ(In.internComponent(0, "aaa"), 0u);
  EXPECT_EQ(In.internComponent(0, "bbb"), 1u);
  EXPECT_EQ(In.internComponent(0, "aaa"), 0u); // Hash-consed.
  // Slots are independent id spaces.
  EXPECT_EQ(In.internComponent(1, "aaa"), 0u);
}

TEST(StateInterner, TupleIdsAreDenseAndDeduped) {
  StateInterner In(2);
  uint32_t T0[2] = {0, 0};
  uint32_t T1[2] = {0, 1};
  auto [Id0, New0] = In.insertTuple(T0, 100);
  EXPECT_TRUE(New0);
  EXPECT_EQ(Id0, 0u);
  auto [Id1, New1] = In.insertTuple(T1, 100);
  EXPECT_TRUE(New1);
  EXPECT_EQ(Id1, 1u);
  auto [Id2, New2] = In.insertTuple(T0, 100);
  EXPECT_FALSE(New2);
  EXPECT_EQ(Id2, 0u);
  EXPECT_EQ(In.size(), 2u);
  EXPECT_EQ(In.rawBytes(), 200u); // Accumulated for new tuples only.
  EXPECT_GT(In.bytesUsed(), 0u);
}

TEST(StateInterner, SurvivesIndexGrowth) {
  // Push the open-addressing tuple index through several doublings and
  // verify ids remain stable and dedup exact.
  StateInterner In(2);
  for (uint32_t I = 0; I != 10000; ++I) {
    uint32_t T[2] = {I, I ^ 0x55u};
    auto [Id, New] = In.insertTuple(T, 10);
    EXPECT_TRUE(New);
    EXPECT_EQ(Id, I);
  }
  for (uint32_t I = 0; I != 10000; ++I) {
    uint32_t T[2] = {I, I ^ 0x55u};
    auto [Id, New] = In.insertTuple(T, 10);
    EXPECT_FALSE(New);
    EXPECT_EQ(Id, I);
  }
  EXPECT_EQ(In.size(), 10000u);
}

TEST(ShardedStateInterner, ConcurrentInsertsAreExact) {
  // All workers intern the same component strings and tuples; the final
  // count must be exact regardless of interleaving.
  constexpr uint32_t N = 20000;
  ShardedStateInterner In(2, 4);
  auto Work = [&] {
    for (uint32_t I = 0; I != N; ++I) {
      std::string C0 = "c" + std::to_string(I % 97);
      std::string C1 = "d" + std::to_string(I);
      uint32_t T[2] = {In.internComponent(0, C0),
                       In.internComponent(1, C1)};
      In.insertTuple(T, 10);
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != 4; ++W)
    Threads.emplace_back(Work);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(In.size(), N);
  EXPECT_GT(In.bytesUsed(), 0u);
  EXPECT_EQ(In.rawBytes(), N * 10u);
}

//===----------------------------------------------------------------------===//
// Round-trip identity: compression on/off, 1 and 4 threads
//===----------------------------------------------------------------------===//

namespace {

RockerOptions fullOpts(unsigned Threads, bool Compress) {
  RockerOptions O;
  O.StopOnViolation = false;
  O.RecordTrace = false;
  O.MaxStates = Budget;
  O.Threads = Threads;
  O.CompressVisited = Compress;
  return O;
}

} // namespace

TEST(CompressedVisited, CorpusCountsIdenticalToRaw) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    for (unsigned Threads : {1u, 4u}) {
      RockerReport On = checkRobustness(P, fullOpts(Threads, true));
      RockerReport Off = checkRobustness(P, fullOpts(Threads, false));
      if (!On.Complete || !Off.Complete)
        continue; // Truncated runs stop at engine-specific frontiers.
      EXPECT_EQ(On.Robust, Off.Robust)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumStates, Off.Stats.NumStates)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumTransitions, Off.Stats.NumTransitions)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.DedupHits, Off.Stats.DedupHits)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumDeadlockStates, Off.Stats.NumDeadlockStates)
          << Name << " at " << Threads << " threads";
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 40u);
}

TEST(CompressedVisited, ViolationReportsByteIdenticalToRaw) {
  // A mix of non-robust (SB, peterson-sc, dekker-sc) and robust (MP,
  // peterson-ra-dmitriy) programs: violation reports must match, and so
  // must clean ones.
  for (const char *Name :
       {"SB", "MP", "peterson-sc", "dekker-sc", "peterson-ra-dmitriy"}) {
    const CorpusEntry &E = findCorpusEntry(Name);
    Program P = E.parse();
    for (unsigned Threads : {1u, 4u}) {
      RockerOptions OOn;
      OOn.Threads = Threads;
      OOn.CompressVisited = true;
      RockerOptions OOff = OOn;
      OOff.CompressVisited = false;
      RockerReport On = checkRobustness(P, OOn);
      RockerReport Off = checkRobustness(P, OOff);
      EXPECT_EQ(On.Robust, E.ExpectRobust) << Name;
      EXPECT_EQ(On.Robust, Off.Robust) << Name;
      EXPECT_EQ(On.FirstViolationText, Off.FirstViolationText)
          << Name << " at " << Threads << " threads";
      if (Threads == 1) {
        // Sequential BFS is fully deterministic, so the violation lists
        // match exactly, down to state ids.
        ASSERT_EQ(On.Violations.size(), Off.Violations.size()) << Name;
        for (size_t I = 0; I != On.Violations.size(); ++I) {
          EXPECT_EQ(On.Violations[I].StateId, Off.Violations[I].StateId);
          EXPECT_EQ(On.Violations[I].Detail, Off.Violations[I].Detail);
        }
      }
    }
  }
}

TEST(CompressedVisited, TsoOracleIdenticalToRaw) {
  // The TSO baseline compares *projection sets* computed under both
  // visited-set modes; verdicts and counts must agree.
  for (const char *Name : {"SB", "MP", "peterson-ra"}) {
    Program P = findCorpusEntry(Name).parse();
    TSOOptions On;
    On.CompressVisited = true;
    TSOOptions Off = On;
    Off.CompressVisited = false;
    TSORobustnessResult ROn = checkTSORobustness(P, On);
    TSORobustnessResult ROff = checkTSORobustness(P, Off);
    EXPECT_EQ(ROn.Robust, ROff.Robust) << Name;
    EXPECT_EQ(ROn.Stats.NumStates, ROff.Stats.NumStates) << Name;
  }
}

TEST(CompressedVisited, StatsReportBytesAndRatio) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport On = checkRobustness(P, fullOpts(1, true));
  ASSERT_TRUE(On.Complete);
  EXPECT_GT(On.Stats.VisitedBytes, 0u);
  EXPECT_GT(On.Stats.VisitedRawBytes, On.Stats.VisitedBytes);
  EXPECT_GT(On.Stats.compressionRatio(), 1.0);
  RockerReport Off = checkRobustness(P, fullOpts(1, false));
  EXPECT_GT(Off.Stats.VisitedBytes, 0u);
  EXPECT_EQ(Off.Stats.VisitedBytes, Off.Stats.VisitedRawBytes);
  EXPECT_DOUBLE_EQ(Off.Stats.compressionRatio(), 1.0);
  // The raw estimate recorded by the compressed run should match what the
  // raw run actually accounted (same keys, same cost model).
  EXPECT_EQ(On.Stats.VisitedRawBytes, Off.Stats.VisitedRawBytes);
  // Parallel engine fills the fields too. No ratio bound here: on a
  // program this small the sharded interner's fixed footprint (tuple
  // shards + component-table stripes) can exceed the raw keys; the ≥4×
  // wins are on large state spaces (bench/visited_memory).
  RockerReport Par = checkRobustness(P, fullOpts(4, true));
  ASSERT_TRUE(Par.Complete);
  EXPECT_GT(Par.Stats.VisitedBytes, 0u);
  // Its raw estimate models the sharded *set* (no mapped state id), so it
  // is slightly below the sequential map-based estimate.
  EXPECT_GT(Par.Stats.VisitedRawBytes, 0u);
  EXPECT_LT(Par.Stats.VisitedRawBytes, On.Stats.VisitedRawBytes);
}
