//===- tests/VisitedSetTest.cpp - Visited-set compression + key fixes -------===//
//
// Covers the compressed visited set (support/StateInterner.h) and the
// state-key correctness fixes that came with it:
//
//  * pc-width regression: state keys used to serialize only the low 16
//    bits of the 32-bit pc, aliasing distinct states in programs with
//    more than 2^16 instructions per thread — now varint-encoded
//    (support/StateKey.h) in both engines and both visited-set modes.
//  * bitstate memory release: expanded states' payloads are freed, so the
//    documented "memory drops to the bit array" behavior actually holds.
//  * interner round-trip identity: with compression on, verdicts, state/
//    transition/dedup counts, and violation reports are byte-identical to
//    the raw visited set, corpus-wide, at 1 and 4 threads.
//  * unit tests of StateInterner / ShardedStateInterner themselves.
//  * the lock-free visited tier (support/LockFreeVisited.h): CAS-table
//    unit tests (concurrent exactness, save/restore, sticky full()),
//    Zobrist delta-vs-full property checks, growth/migration identity,
//    and lock-free-vs-striped verdict/count equivalence at 1, 4, and 16
//    workers (16 is oversubscribed on small machines — that is the
//    point: heavy interleaving, same answers).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "memory/SCMemory.h"
#include "obs/Telemetry.h"
#include "parexplore/ParallelExplorer.h"
#include "rocker/RobustnessChecker.h"
#include "support/LockFreeVisited.h"
#include "support/StateInterner.h"
#include "support/StateKey.h"
#include "support/Zobrist.h"
#include "tso/TSORobustness.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace rocker;

namespace {

constexpr uint64_t Budget = 60'000;

std::vector<std::pair<std::string, Program>> loadCorpusDir() {
  std::vector<std::pair<std::string, Program>> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ROCKER_PROGRAMS_DIR)) {
    if (Entry.path().extension() != ".rkr")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buf;
    Buf << In.rdbuf();
    ParseResult R = parseProgram(Buf.str());
    if (!R.ok())
      ADD_FAILURE() << "cannot parse " << Entry.path();
    else
      Out.emplace_back(Entry.path().filename().string(),
                       std::move(*R.Prog));
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  EXPECT_GT(Out.size(), 40u) << "corpus went missing?";
  return Out;
}

/// A single-thread straight-line program with > 2^16 instructions: its pc
/// walks through values whose low 16 bits repeat, so a 16-bit-truncated
/// key aliases distinct states.
Program longStraightLineProgram(unsigned NumInsts) {
  ProgramBuilder B("pc-width");
  B.addLoc("x");
  B.beginThread("t0");
  RegId R = B.reg("r");
  for (unsigned I = 0; I != NumInsts; ++I)
    B.assign(R, Expr::makeConst(1));
  return B.build();
}

} // namespace

//===----------------------------------------------------------------------===//
// pc-width regression (satellite bugfix)
//===----------------------------------------------------------------------===//

TEST(StateKey, VarintPcKeysDifferAboveBit16) {
  ThreadState A;
  A.Pc = 5;
  A.Regs.assign(2, 7);
  ThreadState B = A;
  B.Pc = 5 + 65536; // Identical low 16 bits.
  EXPECT_NE(programStateKey({A}), programStateKey({B}));
  // And the varint stays compact where the old fixed encoding was not.
  std::string Small;
  appendVarUint32(Small, 5);
  EXPECT_EQ(Small.size(), 1u);
}

TEST(StateKey, VarintRoundsTripBoundaryValues) {
  // Distinct pcs must produce distinct varints (injectivity at the
  // 1/2/3-byte boundaries).
  std::vector<uint32_t> Pcs = {0,     1,      127,    128,     16383,
                               16384, 65535,  65536,  65537,   2097151,
                               2097152, 0xffffffffu};
  std::vector<std::string> Keys;
  for (uint32_t Pc : Pcs) {
    std::string K;
    appendVarUint32(K, Pc);
    Keys.push_back(K);
  }
  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_NE(Keys[I], Keys[J]) << Pcs[I] << " vs " << Pcs[J];
}

TEST(PcWidth, StatesAboveBit16DoNotAliasSequential) {
  // 65600 instructions → 65601 distinct states (one per pc). Under the
  // old 16-bit truncation, pc 65537 aliased pc 1 (same registers), so the
  // exploration stopped short.
  const unsigned N = 65600;
  Program P = longStraightLineProgram(N);
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.CompressVisited = Compress;
    EO.UsePor = false; // POR would chain-compress the straight line away.
    ProductExplorer<SCMemory> Ex(P, Mem, EO);
    ExploreResult R = Ex.run();
    EXPECT_EQ(R.Stats.NumStates, N + 1)
        << (Compress ? "compressed" : "raw");
  }
}

TEST(PcWidth, StatesAboveBit16DoNotAliasParallel) {
  const unsigned N = 65600;
  Program P = longStraightLineProgram(N);
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ParExploreOptions PO;
    PO.Threads = 2;
    PO.RecordTrace = false;
    PO.CompressVisited = Compress;
    PO.UsePor = false; // POR would chain-compress the straight line away.
    ParallelExplorer<SCMemory> Ex(P, Mem, PO);
    ParExploreResult R = Ex.run();
    EXPECT_EQ(R.Stats.NumStates, N + 1)
        << (Compress ? "compressed" : "raw");
  }
}

//===----------------------------------------------------------------------===//
// Bitstate memory release (satellite bugfix)
//===----------------------------------------------------------------------===//

TEST(Bitstate, ReleasesExpandedStatePayloads) {
  Program P = findCorpusEntry("peterson-ra").parse();
  SCMemory Mem(P);
  ExploreOptions EO;
  EO.BitstateLog2 = 20;
  EO.RecordParents = false;
  EO.UsePor = false; // Keep the full state count the release sweep expects.
  ProductExplorer<SCMemory> Ex(P, Mem, EO);
  ExploreResult R = Ex.run();
  ASSERT_GT(R.Stats.NumStates, 100u);
  // Every expanded state's payload was replaced by an empty ProductState;
  // with BFS and no violation, that is every state.
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id)
    EXPECT_TRUE(Ex.state(Id).Threads.empty()) << "state " << Id;
}

TEST(Bitstate, StillStoresPayloadsInExactModes) {
  // The release is bitstate-only: exact runs keep payloads, which the
  // graph oracle's post-run SC-consistency sweep relies on.
  Program P = findCorpusEntry("SB").parse();
  SCMemory Mem(P);
  for (bool Compress : {true, false}) {
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.CompressVisited = Compress;
    ProductExplorer<SCMemory> Ex(P, Mem, EO);
    Ex.run();
    for (uint64_t Id = 0; Id != Ex.numStates(); ++Id)
      EXPECT_FALSE(Ex.state(Id).Threads.empty());
  }
}

//===----------------------------------------------------------------------===//
// Interner unit tests
//===----------------------------------------------------------------------===//

TEST(StateInterner, ComponentIdsAreDensePerSlot) {
  StateInterner In(2);
  EXPECT_EQ(In.internComponent(0, "aaa"), 0u);
  EXPECT_EQ(In.internComponent(0, "bbb"), 1u);
  EXPECT_EQ(In.internComponent(0, "aaa"), 0u); // Hash-consed.
  // Slots are independent id spaces.
  EXPECT_EQ(In.internComponent(1, "aaa"), 0u);
}

TEST(StateInterner, TupleIdsAreDenseAndDeduped) {
  StateInterner In(2);
  uint32_t T0[2] = {0, 0};
  uint32_t T1[2] = {0, 1};
  auto [Id0, New0] = In.insertTuple(T0, 100);
  EXPECT_TRUE(New0);
  EXPECT_EQ(Id0, 0u);
  auto [Id1, New1] = In.insertTuple(T1, 100);
  EXPECT_TRUE(New1);
  EXPECT_EQ(Id1, 1u);
  auto [Id2, New2] = In.insertTuple(T0, 100);
  EXPECT_FALSE(New2);
  EXPECT_EQ(Id2, 0u);
  EXPECT_EQ(In.size(), 2u);
  EXPECT_EQ(In.rawBytes(), 200u); // Accumulated for new tuples only.
  EXPECT_GT(In.bytesUsed(), 0u);
}

TEST(StateInterner, SurvivesIndexGrowth) {
  // Push the open-addressing tuple index through several doublings and
  // verify ids remain stable and dedup exact.
  StateInterner In(2);
  for (uint32_t I = 0; I != 10000; ++I) {
    uint32_t T[2] = {I, I ^ 0x55u};
    auto [Id, New] = In.insertTuple(T, 10);
    EXPECT_TRUE(New);
    EXPECT_EQ(Id, I);
  }
  for (uint32_t I = 0; I != 10000; ++I) {
    uint32_t T[2] = {I, I ^ 0x55u};
    auto [Id, New] = In.insertTuple(T, 10);
    EXPECT_FALSE(New);
    EXPECT_EQ(Id, I);
  }
  EXPECT_EQ(In.size(), 10000u);
}

TEST(ShardedStateInterner, ConcurrentInsertsAreExact) {
  // All workers intern the same component strings and tuples; the final
  // count must be exact regardless of interleaving.
  constexpr uint32_t N = 20000;
  ShardedStateInterner In(2, 4);
  auto Work = [&] {
    for (uint32_t I = 0; I != N; ++I) {
      std::string C0 = "c" + std::to_string(I % 97);
      std::string C1 = "d" + std::to_string(I);
      uint32_t T[2] = {In.internComponent(0, C0),
                       In.internComponent(1, C1)};
      In.insertTuple(T, 10);
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != 4; ++W)
    Threads.emplace_back(Work);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(In.size(), N);
  EXPECT_GT(In.bytesUsed(), 0u);
  EXPECT_EQ(In.rawBytes(), N * 10u);
}

//===----------------------------------------------------------------------===//
// Round-trip identity: compression on/off, 1 and 4 threads
//===----------------------------------------------------------------------===//

namespace {

RockerOptions fullOpts(unsigned Threads, bool Compress) {
  RockerOptions O;
  O.StopOnViolation = false;
  O.RecordTrace = false;
  O.MaxStates = Budget;
  O.Threads = Threads;
  O.CompressVisited = Compress;
  return O;
}

} // namespace

TEST(CompressedVisited, CorpusCountsIdenticalToRaw) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    for (unsigned Threads : {1u, 4u}) {
      RockerReport On = checkRobustness(P, fullOpts(Threads, true));
      RockerReport Off = checkRobustness(P, fullOpts(Threads, false));
      if (!On.Complete || !Off.Complete)
        continue; // Truncated runs stop at engine-specific frontiers.
      EXPECT_EQ(On.Robust, Off.Robust)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumStates, Off.Stats.NumStates)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumTransitions, Off.Stats.NumTransitions)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.DedupHits, Off.Stats.DedupHits)
          << Name << " at " << Threads << " threads";
      EXPECT_EQ(On.Stats.NumDeadlockStates, Off.Stats.NumDeadlockStates)
          << Name << " at " << Threads << " threads";
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 40u);
}

TEST(CompressedVisited, ViolationReportsByteIdenticalToRaw) {
  // A mix of non-robust (SB, peterson-sc, dekker-sc) and robust (MP,
  // peterson-ra-dmitriy) programs: violation reports must match, and so
  // must clean ones.
  for (const char *Name :
       {"SB", "MP", "peterson-sc", "dekker-sc", "peterson-ra-dmitriy"}) {
    const CorpusEntry &E = findCorpusEntry(Name);
    Program P = E.parse();
    for (unsigned Threads : {1u, 4u}) {
      RockerOptions OOn;
      OOn.Threads = Threads;
      OOn.CompressVisited = true;
      RockerOptions OOff = OOn;
      OOff.CompressVisited = false;
      RockerReport On = checkRobustness(P, OOn);
      RockerReport Off = checkRobustness(P, OOff);
      EXPECT_EQ(On.Robust, E.ExpectRobust) << Name;
      EXPECT_EQ(On.Robust, Off.Robust) << Name;
      EXPECT_EQ(On.FirstViolationText, Off.FirstViolationText)
          << Name << " at " << Threads << " threads";
      if (Threads == 1) {
        // Sequential BFS is fully deterministic, so the violation lists
        // match exactly, down to state ids.
        ASSERT_EQ(On.Violations.size(), Off.Violations.size()) << Name;
        for (size_t I = 0; I != On.Violations.size(); ++I) {
          EXPECT_EQ(On.Violations[I].StateId, Off.Violations[I].StateId);
          EXPECT_EQ(On.Violations[I].Detail, Off.Violations[I].Detail);
        }
      }
    }
  }
}

TEST(CompressedVisited, TsoOracleIdenticalToRaw) {
  // The TSO baseline compares *projection sets* computed under both
  // visited-set modes; verdicts and counts must agree.
  for (const char *Name : {"SB", "MP", "peterson-ra"}) {
    Program P = findCorpusEntry(Name).parse();
    TSOOptions On;
    On.CompressVisited = true;
    TSOOptions Off = On;
    Off.CompressVisited = false;
    TSORobustnessResult ROn = checkTSORobustness(P, On);
    TSORobustnessResult ROff = checkTSORobustness(P, Off);
    EXPECT_EQ(ROn.Robust, ROff.Robust) << Name;
    EXPECT_EQ(ROn.Stats.NumStates, ROff.Stats.NumStates) << Name;
  }
}

TEST(CompressedVisited, StatsReportBytesAndRatio) {
  Program P = findCorpusEntry("peterson-ra").parse();
  RockerReport On = checkRobustness(P, fullOpts(1, true));
  ASSERT_TRUE(On.Complete);
  EXPECT_GT(On.Stats.VisitedBytes, 0u);
  EXPECT_GT(On.Stats.VisitedRawBytes, On.Stats.VisitedBytes);
  EXPECT_GT(On.Stats.compressionRatio(), 1.0);
  RockerReport Off = checkRobustness(P, fullOpts(1, false));
  EXPECT_GT(Off.Stats.VisitedBytes, 0u);
  EXPECT_EQ(Off.Stats.VisitedBytes, Off.Stats.VisitedRawBytes);
  EXPECT_DOUBLE_EQ(Off.Stats.compressionRatio(), 1.0);
  // The raw estimate recorded by the compressed run should match what the
  // raw run actually accounted (same keys, same cost model).
  EXPECT_EQ(On.Stats.VisitedRawBytes, Off.Stats.VisitedRawBytes);
  // Parallel engine fills the fields too. No ratio bound here: on a
  // program this small the sharded interner's fixed footprint (tuple
  // shards + component-table stripes) can exceed the raw keys; the ≥4×
  // wins are on large state spaces (bench/visited_memory).
  RockerReport Par = checkRobustness(P, fullOpts(4, true));
  ASSERT_TRUE(Par.Complete);
  EXPECT_GT(Par.Stats.VisitedBytes, 0u);
  // Its raw estimate models the sharded *set* (no mapped state id), so it
  // is slightly below the sequential map-based estimate.
  EXPECT_GT(Par.Stats.VisitedRawBytes, 0u);
  EXPECT_LT(Par.Stats.VisitedRawBytes, On.Stats.VisitedRawBytes);
}

//===----------------------------------------------------------------------===//
// Zobrist hashing: the incremental identity the lock-free tier relies on
//===----------------------------------------------------------------------===//

TEST(Zobrist, DeltaEqualsFullForEverySingleSlotChange) {
  constexpr unsigned N = 9;
  uint32_t Ids[N];
  for (unsigned I = 0; I != N; ++I)
    Ids[I] = I * 17 + 3;
  uint64_t H = zobristTuple(Ids, N);
  for (unsigned Slot = 0; Slot != N; ++Slot) {
    uint32_t Mutated[N];
    std::copy(Ids, Ids + N, Mutated);
    Mutated[Slot] = Ids[Slot] + 100000;
    EXPECT_EQ(zobristUpdate(H, Slot, Ids[Slot], Mutated[Slot]),
              zobristTuple(Mutated, N))
        << "slot " << Slot;
    // And the update is self-inverse (remove == undo install).
    EXPECT_EQ(zobristUpdate(zobristUpdate(H, Slot, Ids[Slot],
                                          Mutated[Slot]),
                            Slot, Mutated[Slot], Ids[Slot]),
              H);
  }
}

TEST(Zobrist, DeltaEqualsFullOnRandomMultiSlotWalk) {
  // Deterministic xorshift walk: mutate 1-4 slots per step and keep the
  // hash incrementally; it must track the full re-hash at every step.
  constexpr unsigned N = 13;
  uint32_t Ids[N] = {};
  uint64_t H = zobristTuple(Ids, N);
  uint64_t Rng = 0x243f6a8885a308d3ull;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned Step = 0; Step != 2000; ++Step) {
    unsigned Changes = 1 + Next() % 4;
    for (unsigned C = 0; C != Changes; ++C) {
      unsigned Slot = Next() % N;
      uint32_t NewId = static_cast<uint32_t>(Next());
      H = zobristUpdate(H, Slot, Ids[Slot], NewId);
      Ids[Slot] = NewId;
    }
    ASSERT_EQ(H, zobristTuple(Ids, N)) << "step " << Step;
  }
}

TEST(Zobrist, DistinctTuplesRarelyCollide) {
  // Not a correctness requirement (equality is decided on the tuple, a
  // collision only costs probe steps), but a sanity check that the
  // mixing is not degenerate.
  constexpr unsigned N = 4;
  std::vector<uint64_t> Hashes;
  for (uint32_t A = 0; A != 16; ++A)
    for (uint32_t B = 0; B != 16; ++B)
      for (uint32_t C = 0; C != 16; ++C) {
        uint32_t Ids[N] = {A, B, C, A ^ B};
        Hashes.push_back(zobristTuple(Ids, N));
      }
  std::sort(Hashes.begin(), Hashes.end());
  EXPECT_EQ(std::unique(Hashes.begin(), Hashes.end()), Hashes.end());
}

//===----------------------------------------------------------------------===//
// Lock-free table unit tests
//===----------------------------------------------------------------------===//

TEST(LockFreeTables, PairTableInternsAndDedups) {
  lf::PairTable T(10);
  lf::ProbeStats St;
  bool New = false;
  uint32_t A = T.intern(lf::packPair(1, 2), 12345, St, New);
  EXPECT_TRUE(New);
  EXPECT_EQ(T.get(A), lf::packPair(1, 2));
  uint32_t B = T.intern(lf::packPair(1, 2), 12345, St, New);
  EXPECT_FALSE(New);
  EXPECT_EQ(A, B);
  // Same hash, different payload: linear probing must separate them.
  uint32_t C = T.intern(lf::packPair(3, 4), 12345, St, New);
  EXPECT_TRUE(New);
  EXPECT_NE(A, C);
  EXPECT_EQ(T.get(C), lf::packPair(3, 4));
  EXPECT_EQ(T.used(), 2u);
  EXPECT_FALSE(T.full());
}

TEST(LockFreeTables, PairTableConcurrentInsertsAreExact) {
  // 4 threads intern the same 8192 payloads: every id must map back to
  // its payload and the used count must be exact (no double-claims).
  constexpr uint32_t N = 8192;
  lf::PairTable T(14);
  auto Work = [&] {
    lf::ProbeStats St;
    for (uint32_t I = 0; I != N; ++I) {
      bool New = false;
      uint32_t Id = T.intern(I, hashMix64(I), St, New);
      ASSERT_NE(Id, lf::PairTable::InvalidId);
      ASSERT_EQ(T.get(Id), I);
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != 4; ++W)
    Threads.emplace_back(Work);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(T.used(), N);
  EXPECT_FALSE(T.full());
}

TEST(LockFreeTables, StringTableConcurrentInsertsAreExact) {
  constexpr uint32_t N = 4096;
  lf::StringTable T(13);
  auto Work = [&] {
    lf::ProbeStats St;
    for (uint32_t I = 0; I != N; ++I) {
      std::string S = "key-" + std::to_string(I);
      bool New = false;
      uint32_t Id = T.intern(S, St, New);
      ASSERT_NE(Id, lf::StringTable::InvalidId);
      ASSERT_EQ(T.get(Id), S);
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != 4; ++W)
    Threads.emplace_back(Work);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(T.used(), N);
  EXPECT_GT(T.bytesUsed(), N * sizeof(uint64_t));
}

TEST(LockFreeTables, PairTableSaveRestoreKeepsSlotPlacement) {
  lf::PairTable T(10);
  lf::ProbeStats St;
  std::vector<std::pair<uint32_t, uint64_t>> Entries;
  for (uint32_t I = 0; I != 100; ++I) {
    bool New = false;
    uint64_t P = lf::packPair(I, I * 7);
    Entries.emplace_back(T.intern(P, hashMix64(P), St, New), P);
  }
  BinWriter W;
  T.save(W);
  lf::PairTable R(10);
  BinReader Rd(W.Buf);
  ASSERT_TRUE(R.restore(Rd));
  EXPECT_EQ(R.used(), T.used());
  for (auto [Id, P] : Entries)
    EXPECT_EQ(R.get(Id), P); // Ids are slot indices: placement-exact.
  // A capacity mismatch must be rejected, not silently rehashed.
  lf::PairTable Wrong(11);
  BinReader Rd2(W.Buf);
  EXPECT_FALSE(Wrong.restore(Rd2));
}

TEST(LockFreeTables, StringTableSaveRestoreKeepsSlotPlacement) {
  lf::StringTable T(10);
  lf::ProbeStats St;
  std::vector<std::pair<uint32_t, std::string>> Entries;
  for (uint32_t I = 0; I != 100; ++I) {
    bool New = false;
    std::string S(1 + I % 40, static_cast<char>('a' + I % 26));
    S += std::to_string(I);
    Entries.emplace_back(T.intern(S, St, New), S);
  }
  BinWriter W;
  T.save(W);
  lf::StringTable R(10);
  BinReader Rd(W.Buf);
  ASSERT_TRUE(R.restore(Rd));
  EXPECT_EQ(R.used(), T.used());
  for (const auto &[Id, S] : Entries)
    EXPECT_EQ(R.get(Id), S);
}

TEST(LockFreeTables, FullTableLatchesStickyAndRejectsInserts) {
  // 2^8 slots, load cap 7/8 → 224 claims; the next distinct payload must
  // fail with InvalidId and latch full() without corrupting dedup.
  lf::PairTable T(8);
  lf::ProbeStats St;
  bool New = false;
  uint32_t Cap = 256 - 256 / 8;
  for (uint32_t I = 0; I != Cap; ++I)
    ASSERT_NE(T.intern(I, hashMix64(I), St, New), lf::PairTable::InvalidId);
  EXPECT_FALSE(T.full());
  EXPECT_TRUE(T.wantsGrowth()); // Growth should have been asked long ago.
  EXPECT_EQ(T.intern(9999, hashMix64(9999), St, New),
            lf::PairTable::InvalidId);
  EXPECT_TRUE(T.full()); // Sticky.
  // Existing payloads still dedup exactly while full.
  EXPECT_NE(T.intern(5, hashMix64(5), St, New), lf::PairTable::InvalidId);
  EXPECT_FALSE(New);
}

//===----------------------------------------------------------------------===//
// Growth migration: rebuilds must preserve the stored state set exactly
//===----------------------------------------------------------------------===//

TEST(LockFreeVisited, SetMigrationPreservesKeys) {
  LockFreeStateSet Small(10);
  lf::ProbeStats St;
  for (uint32_t I = 0; I != 600; ++I)
    EXPECT_TRUE(Small.insert("state-" + std::to_string(I), St));
  EXPECT_TRUE(Small.wantsGrowth()); // 600/1024 is past the 1/2 trigger.
  LockFreeStateSet Big(12);
  Small.migrateTo(Big);
  EXPECT_EQ(Big.size(), Small.size());
  for (uint32_t I = 0; I != 600; ++I)
    EXPECT_FALSE(Big.insert("state-" + std::to_string(I), St)) << I;
  EXPECT_TRUE(Big.insert("state-new", St));
}

TEST(LockFreeVisited, InternerMigrationPreservesStates) {
  // 5 slots exercises the odd-width reduction levels (5 -> 3 -> 2).
  constexpr unsigned Slots = 5;
  LockFreeStateInterner Small(Slots, 16);
  lf::ProbeStats St;
  std::vector<uint32_t> Scratch;
  auto Insert = [&](LockFreeStateInterner &In, uint32_t Seed) {
    uint32_t Ids[Slots];
    uint64_t RawLen = 0;
    for (unsigned S = 0; S != Slots; ++S) {
      std::string C = "c" + std::to_string(S) + "-" +
                      std::to_string(Seed % (37 + S));
      RawLen += C.size();
      Ids[S] = In.internComponent(S, C, St);
    }
    return In.insertTuple(Ids, zobristTuple(Ids, Slots),
                          stringNodeBytes(RawLen, 0), St, Scratch);
  };
  constexpr uint32_t N = 5000;
  for (uint32_t I = 0; I != N; ++I)
    Insert(Small, I);
  uint64_t Stored = Small.size();
  ASSERT_GT(Stored, 1000u);
  LockFreeStateInterner Big(Slots, 18);
  Small.migrateTo(Big);
  EXPECT_EQ(Big.size(), Stored);
  EXPECT_EQ(Big.rawBytes(), Small.rawBytes());
  // Every original state must dedup against the migrated instance (ids
  // changed, state identity did not)...
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_FALSE(Insert(Big, I)) << I;
  EXPECT_EQ(Big.size(), Stored);
  // ...and fresh states must still be accepted as new.
  EXPECT_TRUE(Insert(Big, N * 1000 + 1));
}

TEST(LockFreeVisited, GrownInternerSaveRestoreRoundTrips) {
  // The engine checkpoints the grown size and reconstructs at it; the
  // payload itself must round-trip through save/restore at that size.
  constexpr unsigned Slots = 3;
  LockFreeStateInterner A(Slots, 16);
  lf::ProbeStats St;
  std::vector<uint32_t> Scratch;
  auto Insert = [&](LockFreeStateInterner &In, uint32_t Seed) {
    uint32_t Ids[Slots];
    for (unsigned S = 0; S != Slots; ++S) {
      std::string C = std::to_string(Seed * (S + 1) % 101);
      Ids[S] = In.internComponent(S, C, St);
    }
    return In.insertTuple(Ids, zobristTuple(Ids, Slots),
                          stringNodeBytes(8, 0), St, Scratch);
  };
  for (uint32_t I = 0; I != 2000; ++I)
    Insert(A, I);
  LockFreeStateInterner Grown(Slots, 18);
  A.migrateTo(Grown);
  BinWriter W;
  Grown.save(W);
  LockFreeStateInterner Restored(Slots, 18);
  BinReader R(W.Buf);
  ASSERT_TRUE(Restored.restore(R));
  EXPECT_EQ(Restored.size(), Grown.size());
  EXPECT_EQ(Restored.rawBytes(), Grown.rawBytes());
  for (uint32_t I = 0; I != 2000; ++I)
    EXPECT_FALSE(Insert(Restored, I)) << I;
  // Restoring into the wrong capacity must be rejected (slot indices
  // would not round-trip).
  LockFreeStateInterner Wrong(Slots, 16);
  BinReader R2(W.Buf);
  EXPECT_FALSE(Wrong.restore(R2));
}

//===----------------------------------------------------------------------===//
// Lock-free vs striped: identical verdicts and counts, 1/4/16 workers
//===----------------------------------------------------------------------===//

namespace {

RockerOptions implOpts(unsigned Threads, VisitedImpl V) {
  RockerOptions O = fullOpts(Threads, true);
  O.Visited = V;
  return O;
}

} // namespace

TEST(LockFreeVisited, CorpusCountsIdenticalToStripedAt4Threads) {
  unsigned Compared = 0;
  for (const auto &[Name, P] : loadCorpusDir()) {
    RockerReport Lf =
        checkRobustness(P, implOpts(4, VisitedImpl::LockFree));
    RockerReport Str =
        checkRobustness(P, implOpts(4, VisitedImpl::Striped));
    if (!Lf.Complete || !Str.Complete)
      continue;
    EXPECT_EQ(Lf.Robust, Str.Robust) << Name;
    EXPECT_EQ(Lf.Stats.NumStates, Str.Stats.NumStates) << Name;
    EXPECT_EQ(Lf.Stats.NumTransitions, Str.Stats.NumTransitions) << Name;
    EXPECT_EQ(Lf.Stats.NumDeadlockStates, Str.Stats.NumDeadlockStates)
        << Name;
    ++Compared;
  }
  EXPECT_GT(Compared, 40u);
}

TEST(LockFreeVisited, VerdictsIdenticalToStripedAt16Workers) {
  // Heavily oversubscribed on small machines — deliberately: more
  // preemption points, same answers required. A named mix of robust and
  // non-robust programs keeps the runtime bounded.
  for (const char *Name :
       {"SB", "MP", "peterson-ra", "dekker-sc", "lamport2-ra"}) {
    const CorpusEntry &E = findCorpusEntry(Name);
    Program P = E.parse();
    RockerReport Lf =
        checkRobustness(P, implOpts(16, VisitedImpl::LockFree));
    RockerReport Str =
        checkRobustness(P, implOpts(16, VisitedImpl::Striped));
    EXPECT_EQ(Lf.Robust, E.ExpectRobust) << Name;
    EXPECT_EQ(Lf.Robust, Str.Robust) << Name;
    EXPECT_EQ(Lf.Stats.NumStates, Str.Stats.NumStates) << Name;
    EXPECT_EQ(Lf.FirstViolationText, Str.FirstViolationText) << Name;
  }
}

TEST(LockFreeVisited, SingleWorkerParallelMatchesSequential) {
  // Drives the parallel engine directly at 1 worker (checkRobustness
  // routes Threads=1 to the sequential engine): both visited impls must
  // reproduce the sequential state count exactly.
  for (const char *Name : {"peterson-ra", "SB"}) {
    Program P = findCorpusEntry(Name).parse();
    SCMemory Mem(P);
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.StopOnViolation = false;
    EO.CheckAssertions = false;
    ProductExplorer<SCMemory> Seq(P, Mem, EO);
    uint64_t Expect = Seq.run().Stats.NumStates;
    for (VisitedImpl V : {VisitedImpl::LockFree, VisitedImpl::Striped}) {
      for (unsigned Threads : {1u, 4u}) {
        ParExploreOptions PO;
        PO.Threads = Threads;
        PO.RecordTrace = false;
        PO.StopOnViolation = false;
        PO.CheckAssertions = false;
        PO.Visited = V;
        ParallelExplorer<SCMemory> Ex(P, Mem, PO);
        EXPECT_EQ(Ex.run().Stats.NumStates, Expect)
            << Name << " " << visitedImplName(V) << " x" << Threads;
      }
    }
  }
}

TEST(LockFreeVisited, UncompressedLfSetMatchesStriped) {
  // The raw (no-compression) lock-free path: LockFreeStateSet vs the
  // striped ShardedStateSet.
  for (const char *Name : {"peterson-ra", "dekker-sc"}) {
    Program P = findCorpusEntry(Name).parse();
    RockerOptions Lf = fullOpts(4, false);
    Lf.Visited = VisitedImpl::LockFree;
    RockerOptions Str = fullOpts(4, false);
    Str.Visited = VisitedImpl::Striped;
    RockerReport A = checkRobustness(P, Lf);
    RockerReport B = checkRobustness(P, Str);
    EXPECT_EQ(A.Robust, B.Robust) << Name;
    EXPECT_EQ(A.Stats.NumStates, B.Stats.NumStates) << Name;
  }
}

TEST(LockFreeVisited, TsoOracleIdenticalAcrossImpls) {
  // The TSO baseline's projection sets under the lock-free tier (with
  // the TSOMachine dirty-component hooks feeding the incremental path)
  // must match the striped tier's.
  for (const char *Name : {"SB", "MP", "peterson-ra"}) {
    Program P = findCorpusEntry(Name).parse();
    TSOOptions Lf;
    Lf.Threads = 4;
    Lf.Visited = VisitedImpl::LockFree;
    TSOOptions Str = Lf;
    Str.Visited = VisitedImpl::Striped;
    TSORobustnessResult A = checkTSORobustness(P, Lf);
    TSORobustnessResult B = checkTSORobustness(P, Str);
    EXPECT_EQ(A.Robust, B.Robust) << Name;
    EXPECT_EQ(A.Stats.NumStates, B.Stats.NumStates) << Name;
  }
}

TEST(LockFreeVisited, GrowthFiresAndPreservesCounts) {
  // End-to-end growth: seqlock's 327k states cross the minimal initial
  // table's 1/2-load trigger (2^16 roots grow at 2^15 states), the
  // management thread rebuilds under pause — invalidating every
  // worker's incremental-hash parent cache — and the verdict and counts
  // still match a striped run exactly.
  Program P = findCorpusEntry("seqlock").parse();
  RockerOptions Lf = implOpts(2, VisitedImpl::LockFree);
  Lf.MaxStates = 1'000'000;
  Lf.LockFreeLog2 = 16;
  obs::Snapshot Before = obs::snapshot();
  RockerReport A = checkRobustness(P, Lf);
  uint64_t Growths = obs::snapshot().counter(obs::Ctr::VisitedGrowths) -
                     Before.counter(obs::Ctr::VisitedGrowths);
  RockerOptions Str = implOpts(2, VisitedImpl::Striped);
  Str.MaxStates = 1'000'000;
  RockerReport B = checkRobustness(P, Str);
  EXPECT_EQ(A.Robust, B.Robust);
  EXPECT_EQ(A.Stats.NumStates, B.Stats.NumStates);
  EXPECT_TRUE(A.Complete);
  if (obs::telemetryEnabled())
    EXPECT_GE(Growths, 1u);
}
