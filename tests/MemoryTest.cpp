//===- tests/MemoryTest.cpp - Operational memory subsystem tests ------------===//

#include "memory/RAMachine.h"
#include "memory/SCMemory.h"
#include "memory/TSOMachine.h"

#include "explore/Explorer.h"
#include "litmus/Corpus.h"
#include "rocker/Oracles.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

/// True iff the final program state where every thread halted with the
/// given register-0 values ("a", "b", ...) is reachable under MemSys.
template <typename MemSys>
bool outcomeReachable(const Program &P, const MemSys &Mem,
                      const std::vector<Val> &Reg0Values) {
  ExploreOptions EO;
  EO.RecordParents = false;
  EO.StopOnViolation = false;
  EO.CheckAssertions = false;
  ProductExplorer<MemSys> Ex(P, Mem, EO);
  Ex.run();
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id) {
    const auto &S = Ex.state(Id);
    bool Match = true;
    for (unsigned T = 0; T != P.numThreads() && Match; ++T) {
      if (S.Threads[T].Pc != P.Threads[T].Insts.size())
        Match = false;
      else if (T < Reg0Values.size() && !S.Threads[T].Regs.empty() &&
               S.Threads[T].Regs[0] != Reg0Values[T])
        Match = false;
    }
    if (Match)
      return true;
  }
  return false;
}

const char *SBSrc = R"(
vals 2
locs x y
thread t0
  x := 1
  a := y
thread t1
  y := 1
  b := x
)";

const char *MPSrc = R"(
vals 2
locs x y
thread t0
  x := 1
  y := 1
thread t1
  a := y
  b := x
)";

const char *IRIWSrc = R"(
vals 2
locs x y
thread t0
  x := 1
thread t1
  a := x
  b := y
thread t2
  c := y
  d := x
thread t3
  y := 1
)";

} // namespace

//===----------------------------------------------------------------------===//
// SC memory
//===----------------------------------------------------------------------===//

TEST(SCMemory, DeterministicReadsAndRmws) {
  Program P = parseProgramOrDie("vals 4\nlocs x\nthread t\n  r := x\n");
  SCMemory M(P);
  SCMemory::State S = M.initial();
  EXPECT_EQ(S[0], 0);

  MemAccess W{};
  W.K = MemAccess::Kind::Write;
  W.Loc = 0;
  W.WriteVal = 3;
  unsigned N = 0;
  M.enumerate(S, 0, W, [&](const Label &L, SCMemory::State &&S2) {
    ++N;
    EXPECT_EQ(S2[0], 3);
    S = std::move(S2);
  });
  EXPECT_EQ(N, 1u);

  MemAccess C{};
  C.K = MemAccess::Kind::Cas;
  C.Loc = 0;
  C.Expected = 3;
  C.Desired = 1;
  N = 0;
  M.enumerate(S, 0, C, [&](const Label &L, SCMemory::State &&S2) {
    ++N;
    EXPECT_EQ(L.Type, AccessType::RMW);
    EXPECT_EQ(S2[0], 1);
  });
  EXPECT_EQ(N, 1u);

  MemAccess Wt{};
  Wt.K = MemAccess::Kind::Wait;
  Wt.Loc = 0;
  Wt.Expected = 2; // Blocks: current value is 3.
  N = 0;
  M.enumerate(S, 0, Wt, [&](const Label &, SCMemory::State &&) { ++N; });
  EXPECT_EQ(N, 0u);
}

//===----------------------------------------------------------------------===//
// RA machine: the Section 3 examples
//===----------------------------------------------------------------------===//

TEST(RAMachine, AllowsSBWeakOutcome) {
  Program P = parseProgramOrDie(SBSrc);
  EXPECT_TRUE(outcomeReachable(P, RAMachine(P), {0, 0}));
  EXPECT_FALSE(outcomeReachable(P, SCMemory(P), {0, 0}));
}

TEST(RAMachine, ForbidsMPStaleRead) {
  // a == 1 && b == 0 must be impossible: reading y=1 acquires x=1.
  Program P = parseProgramOrDie(MPSrc);
  RAMachine RA(P);
  ExploreOptions EO;
  EO.RecordParents = false;
  ProductExplorer<RAMachine> Ex(P, RA, EO);
  Ex.run();
  bool SawStale = false, SawBoth = false, SawNone = false;
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id) {
    const auto &S = Ex.state(Id);
    if (S.Threads[1].Pc != P.Threads[1].Insts.size())
      continue;
    Val A = S.Threads[1].Regs[0], B = S.Threads[1].Regs[1];
    SawStale |= A == 1 && B == 0;
    SawBoth |= A == 1 && B == 1;
    SawNone |= A == 0 && B == 0;
  }
  EXPECT_FALSE(SawStale); // The message-passing guarantee.
  EXPECT_TRUE(SawBoth);
  EXPECT_TRUE(SawNone);
}

TEST(RAMachine, AllowsIRIW) {
  // Example 3.3: RA is non-multi-copy-atomic; t1 sees x first, t2 sees y
  // first. TSO forbids this.
  Program P = parseProgramOrDie(IRIWSrc);
  // Register 0 of t1 is 'a' (x value), of t2 is 'c' (y value); full
  // outcome a=1,b=0,c=1,d=0 checked via all four registers: encode by
  // reading into register 0 and asserting the rest via reachability of
  // the joint state. Here we use the two first registers per thread.
  ExploreOptions EO;
  EO.RecordParents = false;
  RAMachine RA(P);
  ProductExplorer<RAMachine> Ex(P, RA, EO);
  Ex.run();
  bool Found = false;
  for (uint64_t Id = 0; Id != Ex.numStates() && !Found; ++Id) {
    const auto &S = Ex.state(Id);
    bool AllDone = true;
    for (unsigned T = 0; T != 4; ++T)
      AllDone &= S.Threads[T].Pc == P.Threads[T].Insts.size();
    if (AllDone && S.Threads[1].Regs[0] == 1 && S.Threads[1].Regs[1] == 0 &&
        S.Threads[2].Regs[0] == 1 && S.Threads[2].Regs[1] == 0)
      Found = true;
  }
  EXPECT_TRUE(Found);

  TSOMachine TSO(P);
  ProductExplorer<TSOMachine> ExT(P, TSO, EO);
  ExT.run();
  bool FoundTso = false;
  for (uint64_t Id = 0; Id != ExT.numStates() && !FoundTso; ++Id) {
    const auto &S = ExT.state(Id);
    bool AllDone = true;
    for (unsigned T = 0; T != 4; ++T)
      AllDone &= S.Threads[T].Pc == P.Threads[T].Insts.size();
    if (AllDone && S.Threads[1].Regs[0] == 1 && S.Threads[1].Regs[1] == 0 &&
        S.Threads[2].Regs[0] == 1 && S.Threads[2].Regs[1] == 0)
      FoundTso = true;
  }
  EXPECT_FALSE(FoundTso); // TSO is multi-copy atomic.
}

TEST(RAMachine, RmwAdjacency2RMW) {
  // Example 3.5: both CASes cannot succeed.
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread t0
  a := CAS(x, 0 => 1)
thread t1
  b := CAS(x, 0 => 1)
)");
  EXPECT_FALSE(outcomeReachable(P, RAMachine(P), {0, 0}));
  EXPECT_TRUE(outcomeReachable(P, RAMachine(P), {0, 1}));
  EXPECT_TRUE(outcomeReachable(P, RAMachine(P), {1, 0}));
}

TEST(RAMachine, SameLocationRmwFencesRestoreSB) {
  // Example 3.6: FADDs to the same otherwise-unused location forbid the
  // SB weak outcome...
  Program P = parseProgramOrDie(R"(
vals 2
locs x y f
thread t0
  x := 1
  r := FADD(f, 0)
  a := y
thread t1
  y := 1
  r := FADD(f, 0)
  b := x
)");
  ExploreOptions EO;
  EO.RecordParents = false;
  RAMachine RA(P);
  ProductExplorer<RAMachine> Ex(P, RA, EO);
  Ex.run();
  bool Found = false;
  for (uint64_t Id = 0; Id != Ex.numStates() && !Found; ++Id) {
    const auto &S = Ex.state(Id);
    if (S.Threads[0].Pc == 3 && S.Threads[1].Pc == 3 &&
        S.Threads[0].Regs[1] == 0 && S.Threads[1].Regs[1] == 0)
      Found = true;
  }
  EXPECT_FALSE(Found);

  // ... while FADDs to two different locations do not (Example 3.6's
  // closing remark).
  Program P2 = parseProgramOrDie(R"(
vals 2
locs x y f g
thread t0
  x := 1
  r := FADD(f, 0)
  a := y
thread t1
  y := 1
  r := FADD(g, 0)
  b := x
)");
  RAMachine RA2(P2);
  ProductExplorer<RAMachine> Ex2(P2, RA2, EO);
  Ex2.run();
  Found = false;
  for (uint64_t Id = 0; Id != Ex2.numStates() && !Found; ++Id) {
    const auto &S = Ex2.state(Id);
    if (S.Threads[0].Pc == 3 && S.Threads[1].Pc == 3 &&
        S.Threads[0].Regs[1] == 0 && S.Threads[1].Regs[1] == 0)
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(RAMachine, TwoPlusTwoW) {
  // Example 3.4: writes need not pick globally maximal positions.
  Program P = parseProgramOrDie(R"(
vals 3
locs x y
thread t0
  x := 1
  y := 2
  a := y
thread t1
  y := 1
  x := 2
  b := x
)");
  EXPECT_TRUE(outcomeReachable(P, RAMachine(P), {1, 1}));
  EXPECT_FALSE(outcomeReachable(P, SCMemory(P), {1, 1}));
  EXPECT_FALSE(outcomeReachable(P, TSOMachine(P), {1, 1}));
}

//===----------------------------------------------------------------------===//
// TSO machine
//===----------------------------------------------------------------------===//

TEST(TSOMachine, AllowsSBAndForwardsOwnWrites) {
  Program P = parseProgramOrDie(SBSrc);
  EXPECT_TRUE(outcomeReachable(P, TSOMachine(P), {0, 0}));

  // Store forwarding: a thread reads its own buffered write.
  Program P2 = parseProgramOrDie(
      "vals 2\nlocs x\nthread t\n  x := 1\n  a := x\n");
  EXPECT_TRUE(outcomeReachable(P2, TSOMachine(P2), {1}));
  EXPECT_FALSE(outcomeReachable(P2, TSOMachine(P2), {0}));
}

TEST(TSOMachine, RmwRequiresDrainedBuffer) {
  // RMWs are locked instructions draining the buffer, so FADD-fenced SB
  // cannot read 0/0 (registers a and b are each thread's register 1).
  Program P = parseProgramOrDie(R"(
vals 2
locs x y f
thread t0
  x := 1
  r := FADD(f, 0)
  a := y
thread t1
  y := 1
  r := FADD(f, 0)
  b := x
)");
  TSOMachine TSO(P);
  ExploreOptions EO;
  EO.RecordParents = false;
  ProductExplorer<TSOMachine> Ex(P, TSO, EO);
  Ex.run();
  bool SawWeak = false;
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id) {
    const auto &S = Ex.state(Id);
    if (S.Threads[0].Pc == 3 && S.Threads[1].Pc == 3 &&
        S.Threads[0].Regs[1] == 0 && S.Threads[1].Regs[1] == 0)
      SawWeak = true;
  }
  EXPECT_FALSE(SawWeak);
}

TEST(TSOMachine, BufferBoundReported) {
  Program P = parseProgramOrDie(
      "vals 2\nlocs x\nthread t\n  x := 1\n  x := 1\n  x := 1\n");
  TSOMachine M(P, /*BufferBound=*/2);
  ExploreOptions EO;
  EO.RecordParents = false;
  ProductExplorer<TSOMachine> Ex(P, M, EO);
  Ex.run();
  EXPECT_TRUE(M.saturated());
}

TEST(RAMachine, SerializationDistinguishesViews) {
  Program P = parseProgramOrDie(MPSrc);
  RAMachine RA(P);
  RAMachine::State S0 = RA.initial();
  MemAccess W{};
  W.K = MemAccess::Kind::Write;
  W.Loc = 0;
  W.WriteVal = 1;
  RAMachine::State S1 = S0;
  RA.enumerate(S0, 0, W, [&](const Label &, RAMachine::State &&S2) {
    S1 = std::move(S2);
  });
  std::string K0, K1;
  RA.serialize(S0, K0);
  RA.serialize(S1, K1);
  EXPECT_NE(K0, K1);
}
