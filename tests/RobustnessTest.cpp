//===- tests/RobustnessTest.cpp - Rocker end-to-end verdict tests -----------===//

#include "litmus/Corpus.h"
#include "rocker/Oracles.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

using namespace rocker;

//===----------------------------------------------------------------------===//
// Litmus verdicts (the paper's running examples), both monitor modes.
//===----------------------------------------------------------------------===//

class LitmusVerdict : public ::testing::TestWithParam<
                          std::tuple<std::string, bool>> {};

TEST_P(LitmusVerdict, MatchesPaper) {
  const auto &[Name, Abstract] = GetParam();
  const CorpusEntry &E = findCorpusEntry(Name);
  Program P = E.parse();
  RockerOptions O;
  O.UseCriticalAbstraction = Abstract;
  RockerReport R = checkRobustness(P, O);
  ASSERT_TRUE(R.Complete);
  EXPECT_EQ(R.Robust, E.ExpectRobust)
      << Name << ": " << R.FirstViolationText;
}

static std::vector<std::tuple<std::string, bool>> litmusParams() {
  std::vector<std::tuple<std::string, bool>> Ps;
  for (const CorpusEntry &E : litmusTests())
    for (bool Abstract : {false, true})
      Ps.emplace_back(E.Name, Abstract);
  return Ps;
}

INSTANTIATE_TEST_SUITE_P(
    AllLitmus, LitmusVerdict, ::testing::ValuesIn(litmusParams()),
    [](const ::testing::TestParamInfo<LitmusVerdict::ParamType> &Info) {
      std::string Name = std::get<0>(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name + (std::get<1>(Info.param) ? "_abstract" : "_full");
    });

//===----------------------------------------------------------------------===//
// Litmus verdicts agree with the direct oracles.
//===----------------------------------------------------------------------===//

TEST(LitmusOracles, GraphOracleAgreesOnLoopFreeTests) {
  for (const CorpusEntry &E : litmusTests()) {
    if (E.Name == "barrier-loop")
      continue; // Loops: the graph oracle would not terminate.
    Program P = E.parse();
    OracleResult O = checkGraphRobustnessOracle(P, 3'000'000);
    ASSERT_TRUE(O.Complete) << E.Name;
    EXPECT_EQ(O.Robust, E.ExpectRobust) << E.Name << "\n" << O.Detail;
  }
}

TEST(LitmusOracles, StateRobustnessDistinctions) {
  // SB is not even state robust; SB-zero and 2+2W-noreads are state
  // robust yet not execution-graph robust (the Section 4 motivation).
  OracleResult Sb =
      checkStateRobustnessOracle(findCorpusEntry("SB").parse());
  ASSERT_TRUE(Sb.Complete);
  EXPECT_FALSE(Sb.Robust);

  for (const char *Name : {"SB-zero", "2+2W-noreads"}) {
    OracleResult O =
        checkStateRobustnessOracle(findCorpusEntry(Name).parse());
    ASSERT_TRUE(O.Complete) << Name;
    EXPECT_TRUE(O.Robust) << Name;
    RockerReport R = checkRobustness(findCorpusEntry(Name).parse());
    EXPECT_FALSE(R.Robust) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Violation reporting
//===----------------------------------------------------------------------===//

TEST(Violations, SBWitnessDetails) {
  Program P = findCorpusEntry("SB").parse();
  // Full monitor: the witness value is tracked precisely (under the
  // abstraction SB's values are all non-critical and the witness is the
  // 0xff "some non-critical value" marker).
  RockerOptions O;
  O.UseCriticalAbstraction = false;
  RockerReport R = checkRobustness(P, O);
  ASSERT_FALSE(R.Robust);
  ASSERT_FALSE(R.Violations.empty());
  const Violation &V = R.Violations.front();
  EXPECT_EQ(V.K, Violation::Kind::Robustness);
  EXPECT_EQ(V.Witness, 0); // The stale initial value.
  EXPECT_FALSE(R.FirstViolationText.empty());
  // The report embeds an SC interleaving.
  EXPECT_NE(R.FirstViolationText.find("trace"), std::string::npos);
}

TEST(Violations, TraceReplaysToWitnessState) {
  Program P = findCorpusEntry("SB").parse();
  RockerOptions O;
  O.UseCriticalAbstraction = false;
  RockerReport R = checkRobustness(P, O);
  ASSERT_FALSE(R.Violations.empty());
  // Both threads must have executed their store before a stale read can
  // be witnessed; the trace therefore contains both writes.
  EXPECT_NE(R.FirstViolationText.find("W(x,1)"), std::string::npos);
  EXPECT_NE(R.FirstViolationText.find("W(y,1)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// DRF corollary (Section 5): race-free programs are robust.
//===----------------------------------------------------------------------===//

TEST(DrfCorollary, SynchronizedCounterIsRobust) {
  // All accesses protected by a blocking CAS lock: race-free under SC,
  // hence execution-graph robust.
  Program P = parseProgramOrDie(R"(
vals 4
locs lock c
thread t0
  BCAS(lock, 0 => 1)
  r := c
  c := r + 1
  lock := 0
thread t1
  BCAS(lock, 0 => 1)
  r := c
  c := r + 1
  lock := 0
)");
  RockerReport R = checkRobustness(P);
  EXPECT_TRUE(R.Robust) << R.FirstViolationText;
}

TEST(DrfCorollary, NoConcurrentWritesIsRobust) {
  // Section 5: programs with no concurrent writes under SC have no weak
  // behaviors (single-writer-per-location, reader-only others).
  Program P = parseProgramOrDie(R"(
vals 3
locs x y
thread w
  x := 1
  x := 2
thread r0
  a := x
  b := x
thread r1
  c := x
)");
  RockerReport R = checkRobustness(P);
  EXPECT_TRUE(R.Robust) << R.FirstViolationText;
  (void)R;
}

//===----------------------------------------------------------------------===//
// Assertion checking under SC
//===----------------------------------------------------------------------===//

TEST(Assertions, FailingAssertReported) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread t0
  x := 1
thread t1
  a := x
  assert(a == 0)
)");
  RockerReport R = checkRobustness(P);
  EXPECT_FALSE(R.Robust);
  bool SawAssert = false;
  for (const Violation &V : R.Violations)
    SawAssert |= V.K == Violation::Kind::AssertFail;
  EXPECT_TRUE(SawAssert);
}

TEST(Assertions, CanBeDisabled) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread t0
  assert(0)
)");
  RockerOptions O;
  O.CheckAssertions = false;
  RockerReport R = checkRobustness(P, O);
  EXPECT_TRUE(R.Robust);
}

//===----------------------------------------------------------------------===//
// State budget
//===----------------------------------------------------------------------===//

TEST(Budget, TruncationReported) {
  Program P = findCorpusEntry("seqlock").parse();
  RockerOptions O;
  O.MaxStates = 100;
  RockerReport R = checkRobustness(P, O);
  EXPECT_FALSE(R.Complete);
}

//===----------------------------------------------------------------------===//
// Monitor modes agree on the whole corpus.
//===----------------------------------------------------------------------===//

TEST(AbstractMonitor, AgreesWithFullMonitorOnCorpus) {
  for (const CorpusEntry &E : litmusTests()) {
    Program P = E.parse();
    RockerOptions Full;
    Full.UseCriticalAbstraction = false;
    RockerOptions Abs;
    Abs.UseCriticalAbstraction = true;
    EXPECT_EQ(checkRobustness(P, Full).Robust,
              checkRobustness(P, Abs).Robust)
        << E.Name;
  }
}
