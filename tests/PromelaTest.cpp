//===- tests/PromelaTest.cpp - Promela exporter structural tests ------------===//
//
// Spin is not a build dependency, so the emitted models are validated
// structurally: the instrumentation globals and inlines exist, every
// access carries its Theorem 5.3 violation alternative, blocking
// primitives compile to guarded d_steps, and the uninstrumented mode
// contains none of it.
//
//===----------------------------------------------------------------------===//

#include "promela/PromelaExport.h"

#include "litmus/Corpus.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

unsigned countOccurrences(const std::string &Hay, const std::string &Needle) {
  unsigned N = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++N;
  return N;
}

} // namespace

TEST(Promela, SBModelStructure) {
  Program P = findCorpusEntry("SB").parse();
  std::string M = exportPromela(P);

  // Monitor globals.
  EXPECT_NE(M.find("byte M[2];"), std::string::npos);
  EXPECT_NE(M.find("bit VSC[4];"), std::string::npos);
  EXPECT_NE(M.find("bit Vv[8];"), std::string::npos);
  // One write and one read inline per thread.
  EXPECT_NE(M.find("inline mon_w_t0_x0"), std::string::npos);
  EXPECT_NE(M.find("inline mon_r_t0_x1"), std::string::npos);
  EXPECT_NE(M.find("inline mon_w_t1_x1"), std::string::npos);
  EXPECT_NE(M.find("inline mon_r_t1_x0"), std::string::npos);
  // Four accesses -> four violation alternatives.
  EXPECT_EQ(countOccurrences(M, "assert(false)"), 4u);
  // Both proctypes and the init runner.
  EXPECT_NE(M.find("proctype t0()"), std::string::npos);
  EXPECT_NE(M.find("proctype t1()"), std::string::npos);
  EXPECT_NE(M.find("run t1();"), std::string::npos);
}

TEST(Promela, UninstrumentedModeIsPlainSC) {
  Program P = findCorpusEntry("SB").parse();
  PromelaOptions O;
  O.Instrument = false;
  std::string M = exportPromela(P, O);
  EXPECT_EQ(M.find("VSC"), std::string::npos);
  EXPECT_EQ(M.find("assert(false)"), std::string::npos);
  EXPECT_EQ(M.find("inline mon_"), std::string::npos);
  // Memory still updated directly.
  EXPECT_NE(M.find("M[0] = 1"), std::string::npos);
}

TEST(Promela, BlockingPrimitivesGuardTheirDSteps) {
  Program P = findCorpusEntry("barrier").parse();
  std::string M = exportPromela(P);
  // wait(y == 1) compiles to a d_step guarded on M[loc] == value, plus
  // the stale-read violation alternative on V.
  EXPECT_NE(M.find("d_step { M[1] == 1 -> skip; mon_r_t0_x1() }"),
            std::string::npos);
  EXPECT_EQ(countOccurrences(M, "assert(false)"), 4u);
}

TEST(Promela, CasEmitsBothOutcomesAndViolation) {
  Program P = findCorpusEntry("2RMW").parse();
  std::string M = exportPromela(P);
  EXPECT_NE(M.find("M[0] == 0 ->"), std::string::npos); // Success branch.
  EXPECT_NE(M.find("M[0] != 0 ->"), std::string::npos); // Failure branch.
  EXPECT_NE(M.find("inline mon_u_t0_x0"), std::string::npos);
  EXPECT_EQ(countOccurrences(M, "assert(false)"), 2u);
}

TEST(Promela, UserAssertionsCarriedThrough) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread t0
  a := x
  assert(a == 0)
)");
  std::string M = exportPromela(P);
  EXPECT_NE(M.find("assert((r0 == 0) != 0);"), std::string::npos);
}

TEST(Promela, DeterministicOutput) {
  Program P = findCorpusEntry("peterson-ra").parse();
  EXPECT_EQ(exportPromela(P), exportPromela(P));
}

TEST(Promela, ExportsWholeCorpusWithoutCrashing) {
  for (const CorpusEntry &E : figure7Programs()) {
    Program P = E.parse();
    std::string M = exportPromela(P);
    EXPECT_GT(M.size(), 500u) << E.Name;
    EXPECT_NE(M.find("proctype"), std::string::npos) << E.Name;
  }
}
