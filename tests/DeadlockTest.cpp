//===- tests/DeadlockTest.cpp - Deadlock-state diagnostics ------------------===//

#include "litmus/Corpus.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

using namespace rocker;

TEST(Deadlock, UnsatisfiableWaitIsCounted) {
  // The wait can never succeed: the only write of 1 is after it.
  Program P = parseProgramOrDie(R"(
vals 2
locs x
thread t0
  wait(x == 1)
  x := 1
)");
  RockerReport R = checkRobustness(P);
  EXPECT_TRUE(R.Robust);
  EXPECT_EQ(R.Stats.NumDeadlockStates, 1u);
}

TEST(Deadlock, BarrierHasNone) {
  Program P = findCorpusEntry("barrier").parse();
  RockerReport R = checkRobustness(P);
  EXPECT_EQ(R.Stats.NumDeadlockStates, 0u);
}

TEST(Deadlock, CrossedWaitsDeadlock) {
  // Both threads wait for the other's post-wait write.
  Program P = parseProgramOrDie(R"(
vals 2
locs x y
thread t0
  wait(y == 1)
  x := 1
thread t1
  wait(x == 1)
  y := 1
)");
  RockerReport R = checkRobustness(P);
  EXPECT_TRUE(R.Robust);
  EXPECT_EQ(R.Stats.NumDeadlockStates, 1u);
}

TEST(Deadlock, HaltedIsNotDeadlock) {
  Program P = parseProgramOrDie("vals 2\nlocs x\nthread t0\n  x := 1\n");
  RockerReport R = checkRobustness(P);
  EXPECT_EQ(R.Stats.NumDeadlockStates, 0u);
}
