//===- tests/SRATest.cpp - Strong release/acquire machine tests -------------===//
//
// SRA sits strictly between RA and SC: writes take globally maximal
// timestamps, so 2+2W's weak outcome disappears (Example 3.4 notes that
// it is an RA-vs-SRA distinguishing behavior) while SB's and IRIW's
// remain.
//
//===----------------------------------------------------------------------===//

#include "memory/SRAMachine.h"

#include "explore/Explorer.h"
#include "lang/Parser.h"
#include "memory/SCMemory.h"
#include "memory/RAMachine.h"

#include <gtest/gtest.h>

using namespace rocker;

namespace {

/// Is a halted state with the given register predicate reachable?
template <typename MemSys, typename Pred>
bool finalStateReachable(const Program &P, const MemSys &Mem, Pred Ok) {
  ExploreOptions EO;
  EO.RecordParents = false;
  ProductExplorer<MemSys> Ex(P, Mem, EO);
  Ex.run();
  for (uint64_t Id = 0; Id != Ex.numStates(); ++Id) {
    const auto &S = Ex.state(Id);
    bool Done = true;
    for (unsigned T = 0; T != P.numThreads(); ++T)
      Done &= S.Threads[T].Pc == P.Threads[T].Insts.size();
    if (Done && Ok(S))
      return true;
  }
  return false;
}

} // namespace

TEST(SRAMachine, StillAllowsSB) {
  Program P = parseProgramOrDie(R"(
vals 2
locs x y
thread t0
  x := 1
  a := y
thread t1
  y := 1
  b := x
)");
  SRAMachine SRA(P);
  EXPECT_TRUE(finalStateReachable(P, SRA, [](const auto &S) {
    return S.Threads[0].Regs[0] == 0 && S.Threads[1].Regs[0] == 0;
  }));
}

TEST(SRAMachine, Forbids2Plus2W) {
  // Example 3.4: under RA both final reads can be 1; under SRA writes
  // take maximal positions, so at least one thread must see the other's
  // later write.
  Program P = parseProgramOrDie(R"(
vals 3
locs x y
thread t0
  x := 1
  y := 2
  a := y
thread t1
  y := 1
  x := 2
  b := x
)");
  auto Weak = [](const auto &S) {
    return S.Threads[0].Regs[0] == 1 && S.Threads[1].Regs[0] == 1;
  };
  EXPECT_TRUE(finalStateReachable(P, RAMachine(P), Weak));
  EXPECT_FALSE(finalStateReachable(P, SRAMachine(P), Weak));
}

TEST(SRAMachine, StillNonMultiCopyAtomic) {
  // IRIW stays allowed under SRA (unlike under TSO).
  Program P = parseProgramOrDie(R"(
vals 2
locs x y
thread w0
  x := 1
thread r0
  a := x
  b := y
thread r1
  c := y
  d := x
thread w1
  y := 1
)");
  auto Weak = [](const auto &S) {
    return S.Threads[1].Regs[0] == 1 && S.Threads[1].Regs[1] == 0 &&
           S.Threads[2].Regs[0] == 1 && S.Threads[2].Regs[1] == 0;
  };
  EXPECT_TRUE(finalStateReachable(P, SRAMachine(P), Weak));
}

TEST(SRAMachine, ContainsSCAndIsContainedInRA) {
  // On small random-ish programs: SC-reachable program states ⊆
  // SRA-reachable ⊆ RA-reachable.
  const char *Srcs[] = {
      R"(
vals 3
locs x y
thread t0
  x := 1
  a := y
  y := 2
thread t1
  y := 1
  b := x
  x := 2
)",
      R"(
vals 2
locs x
thread t0
  r := CAS(x, 0 => 1)
thread t1
  s := FADD(x, 1)
  t := x
)",
  };
  for (const char *Src : Srcs) {
    Program P = parseProgramOrDie(Src);
    ExploreOptions EO;
    EO.RecordParents = false;
    EO.CollectProgramStates = true;

    SCMemory SC(P);
    ProductExplorer<SCMemory> ExSc(P, SC, EO);
    auto RSc = ExSc.run();
    SRAMachine SRA(P);
    ProductExplorer<SRAMachine> ExSra(P, SRA, EO);
    auto RSra = ExSra.run();
    RAMachine RA(P);
    ProductExplorer<RAMachine> ExRa(P, RA, EO);
    auto RRa = ExRa.run();

    for (const std::string &K : RSc.ProgramStates)
      EXPECT_TRUE(RSra.ProgramStates.count(K)) << Src;
    for (const std::string &K : RSra.ProgramStates)
      EXPECT_TRUE(RRa.ProgramStates.count(K)) << Src;
  }
}

TEST(SRAMachine, RmwsReadOnlyMaximalMessage) {
  // Under SRA an RMW must extend the mo-maximal message; after two
  // unsynchronized increments the counter is always exactly 2.
  Program P = parseProgramOrDie(R"(
vals 4
locs x
thread t0
  a := FADD(x, 1)
thread t1
  b := FADD(x, 1)
thread t2
  wait(x == 2)
)");
  SRAMachine SRA(P);
  EXPECT_TRUE(finalStateReachable(P, SRA, [](const auto &S) {
    return true; // The wait(x == 2) gate is the assertion.
  }));
}
