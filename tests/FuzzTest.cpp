//===- tests/FuzzTest.cpp - Cross-validation property tests -----------------===//
//
// Random loop-free programs, checked four ways:
//  * Theorem 5.3: Rocker's SCM verdict (full monitor) equals the direct
//    execution-graph robustness oracle (P×RAG exploration + Lemma A.11).
//  * Section 5.1: the abstract monitor gives the same verdict as the full
//    monitor.
//  * Proposition 4.10: execution-graph robustness implies state
//    robustness.
//  * Lemmas 4.6/4.8/3.7: the operational machines agree with their graph
//    presentations, and SC-reachable states are RA-reachable.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "lang/Printer.h"
#include "rocker/Oracles.h"
#include "rocker/RobustnessChecker.h"

#include <gtest/gtest.h>

using namespace rocker;
using namespace rocker::test;

namespace {

RockerOptions fullOpts() {
  RockerOptions O;
  O.UseCriticalAbstraction = false;
  O.CheckAssertions = false;
  O.CheckRaces = false;
  O.RecordTrace = false;
  return O;
}

RockerOptions abstractOpts() {
  RockerOptions O = fullOpts();
  O.UseCriticalAbstraction = true;
  return O;
}

} // namespace

TEST(Fuzz, RockerMatchesGraphOracleAndAbstractMatchesFull) {
  std::mt19937 Rng(20190622);
  unsigned OracleChecked = 0, RobustSeen = 0, NonRobustSeen = 0;
  for (unsigned I = 0; I != 250; ++I) {
    Program P = randomProgram(Rng);
    RockerReport Full = checkRobustness(P, fullOpts());
    RockerReport Abs = checkRobustness(P, abstractOpts());
    ASSERT_TRUE(Full.Complete && Abs.Complete);
    EXPECT_EQ(Full.Robust, Abs.Robust)
        << "abstract/full divergence on:\n"
        << toString(P);

    OracleResult O = checkGraphRobustnessOracle(P, 400'000);
    if (!O.Complete)
      continue;
    ++OracleChecked;
    (Full.Robust ? RobustSeen : NonRobustSeen)++;
    EXPECT_EQ(Full.Robust, O.Robust)
        << "SCM verdict diverges from the RAG oracle on:\n"
        << toString(P) << "\noracle detail: " << O.Detail
        << "\nrocker: " << Full.FirstViolationText;
  }
  // The sample must exercise both verdicts to be meaningful.
  EXPECT_GT(OracleChecked, 150u);
  EXPECT_GT(RobustSeen, 20u);
  EXPECT_GT(NonRobustSeen, 20u);
}

TEST(Fuzz, NaRaceVerdictsMatchRagNaOracle) {
  // Theorem 6.2: robustness with non-atomics = no RA-loc witness and no
  // racy SC state; the RAG+NA oracle decides the same property via the
  // ⊥ transition and SC-consistency. Both must agree on random programs
  // with a non-atomic location.
  std::mt19937 Rng(60606);
  RandomProgramOptions O;
  O.NumNaLocs = 1;
  O.MaxInstsPerThread = 4;
  unsigned Conclusive = 0, Racy = 0;
  for (unsigned I = 0; I != 120; ++I) {
    Program P = randomProgram(Rng, O);
    RockerOptions RO;
    RO.RecordTrace = false;
    RO.CheckAssertions = false;
    RO.CheckRaces = true;
    RockerReport R = checkRobustness(P, RO);
    ASSERT_TRUE(R.Complete);
    OracleResult Orc =
        checkGraphRobustnessOracle(P, 400'000, /*NaExtension=*/true);
    if (!Orc.Complete)
      continue;
    ++Conclusive;
    if (!R.Robust)
      ++Racy;
    EXPECT_EQ(R.Robust, Orc.Robust)
        << "SCM (Thm 6.2 checks) vs RAG+NA oracle divergence on:\n"
        << toString(P) << "\noracle: " << Orc.Detail << "\nrocker: "
        << R.FirstViolationText;
  }
  EXPECT_GT(Conclusive, 80u);
  EXPECT_GT(Racy, 10u); // The sample must contain racy programs.
}

TEST(Fuzz, BlockingPrimitivesAgreeWithOracle) {
  // wait/BCAS change which labels are enabled (and hence the Theorem 5.3
  // conditions); the oracle sees the same restriction through RAG's
  // enabled transitions.
  std::mt19937 Rng(70707);
  RandomProgramOptions O;
  O.AllowBlocking = true;
  O.MaxInstsPerThread = 4;
  unsigned Conclusive = 0;
  for (unsigned I = 0; I != 120; ++I) {
    Program P = randomProgram(Rng, O);
    RockerReport Full = checkRobustness(P, fullOpts());
    RockerReport Abs = checkRobustness(P, abstractOpts());
    ASSERT_TRUE(Full.Complete && Abs.Complete);
    EXPECT_EQ(Full.Robust, Abs.Robust) << toString(P);
    OracleResult Orc = checkGraphRobustnessOracle(P, 400'000);
    if (!Orc.Complete)
      continue;
    ++Conclusive;
    EXPECT_EQ(Full.Robust, Orc.Robust)
        << toString(P) << "\noracle: " << Orc.Detail;
  }
  EXPECT_GT(Conclusive, 80u);
}

TEST(Fuzz, ParallelEngineMatchesSequentialOnRandomPrograms) {
  // The work-stealing engine (src/parexplore) must agree with the
  // sequential engine on verdict, state count, and transition count for
  // arbitrary programs — full exploration, so the counts are
  // order-independent and exactly comparable.
  std::mt19937 Rng(20260805);
  unsigned NonRobustSeen = 0;
  for (unsigned I = 0; I != 150; ++I) {
    Program P = randomProgram(Rng);
    RockerOptions O;
    O.StopOnViolation = false;
    O.RecordTrace = false;
    for (unsigned Threads : {2u, 4u}) {
      RockerOptions PO = O;
      PO.Threads = Threads;
      RockerReport Seq = checkRobustness(P, O);
      RockerReport Par = checkRobustness(P, PO);
      ASSERT_TRUE(Seq.Complete && Par.Complete);
      EXPECT_EQ(Seq.Robust, Par.Robust)
          << "sequential/parallel verdict divergence at " << Threads
          << " threads on:\n"
          << toString(P);
      EXPECT_EQ(Seq.Stats.NumStates, Par.Stats.NumStates) << toString(P);
      EXPECT_EQ(Seq.Stats.NumTransitions, Par.Stats.NumTransitions)
          << toString(P);
      if (!Seq.Robust)
        ++NonRobustSeen;

      // SC assertion checking must agree as well.
      RockerReport SeqSc = exploreSC(P, O);
      RockerReport ParSc = exploreSC(P, PO);
      EXPECT_EQ(SeqSc.Robust, ParSc.Robust) << toString(P);
      EXPECT_EQ(SeqSc.Stats.NumStates, ParSc.Stats.NumStates)
          << toString(P);
    }
  }
  EXPECT_GT(NonRobustSeen, 30u); // The sample must exercise violations.
}

TEST(Fuzz, GraphRobustImpliesStateRobust) {
  std::mt19937 Rng(42);
  for (unsigned I = 0; I != 120; ++I) {
    Program P = randomProgram(Rng);
    RockerReport R = checkRobustness(P, abstractOpts());
    if (!R.Robust)
      continue;
    OracleResult SR = checkStateRobustnessOracle(P, 400'000);
    if (!SR.Complete)
      continue;
    EXPECT_TRUE(SR.Robust)
        << "execution-graph robust but not state robust?!\n"
        << toString(P);
  }
}

TEST(Fuzz, RAMachineAgreesWithRAG) {
  std::mt19937 Rng(7);
  RandomProgramOptions O;
  O.MaxInstsPerThread = 4; // RAG exploration is expensive.
  unsigned Conclusive = 0;
  for (unsigned I = 0; I != 60; ++I) {
    Program P = randomProgram(Rng, O);
    std::optional<bool> Match = crossCheckRAMachineVsRAG(P, 400'000);
    if (!Match)
      continue; // State budget hit; inconclusive.
    ++Conclusive;
    EXPECT_TRUE(*Match) << "RA machine/RAG divergence (Lemma 4.8) on:\n"
                        << toString(P);
  }
  EXPECT_GT(Conclusive, 40u);
}

TEST(Fuzz, SCAgreesWithSCGAndIsContainedInRA) {
  std::mt19937 Rng(99);
  for (unsigned I = 0; I != 80; ++I) {
    Program P = randomProgram(Rng);
    std::optional<bool> Scg = crossCheckSCVsSCG(P);
    if (Scg)
      EXPECT_TRUE(*Scg) << toString(P);
    std::optional<bool> Sub = crossCheckSCSubsetOfRA(P);
    if (Sub)
      EXPECT_TRUE(*Sub) << toString(P);
  }
}
